//! The incremental propose-accept engine.
//!
//! A cold resolve is the standard distributed Gale–Shapley loop: every
//! man free with pointer at the top of his list. A *warm* resolve
//! re-enters the same loop from the cached matching, but simply keeping
//! every clean pair would be unsound: a mutation that frees or
//! downgrades a woman leaves men whose proposal pointers already passed
//! her with no way to re-propose, and those skipped edges become
//! permanent blocking pairs. The fix is a **rewind cascade** run before
//! the loop:
//!
//! 1. re-install every cached pair that survived the mutations
//!    (dirtied proposers are unmatched per the warm-start contract, and
//!    pairs whose edge was deleted dissolve); every freed or dirtied
//!    woman joins a worklist;
//! 2. derive each man's pointer from the cached state: matched men
//!    point at their partner, clean unmatched men at the end of their
//!    list (they exhausted it at the previous convergence), dirty men
//!    at the top;
//! 3. drain the worklist: for each woman, every man ranked above her
//!    current holding whose pointer has passed her is rewound to her
//!    position — leaving his partner if he strictly prefers her (the
//!    freed partner re-joins the worklist).
//!
//! Pointers only decrease during the cascade and each dissolution
//! strictly decreases one, so it terminates; afterwards the classic GS
//! invariant holds (every woman a man's pointer has skipped holds a
//! partner she weakly prefers to him), so resuming the propose-accept
//! loop to quiescence yields a stable matching — in rounds proportional
//! to the *edit's* displacement chain, not the market size.

use asm_instance::Instance;
use asm_matching::{Matching, StabilityReport};
use std::collections::BTreeSet;

/// Dirty-fraction ceiling for `auto` warm starts: above this fraction
/// of agents dirty, re-entry bookkeeping approaches cold-solve work and
/// [`crate::MarketState::resolve`] prefers the cold path.
pub const WARM_DIRTY_LIMIT: f64 = 0.25;

/// The result of one market resolve (warm or cold).
#[derive(Clone, Debug, PartialEq)]
pub struct ResolveReport {
    /// The stable matching produced (node-id space of the resolved
    /// instance: women first, then men).
    pub matching: Matching,
    /// Proposal cycles executed by the re-entered loop (each cycle =
    /// 2 CONGEST rounds). A no-op warm resolve reports 0.
    pub cycles: u64,
    /// Propose-accept communication rounds (`2 · cycles`).
    pub rounds: u64,
    /// PROPOSE messages sent by the re-entered loop.
    pub proposals: u64,
    /// Whether the warm path ran (false = cold solve).
    pub warm: bool,
    /// Whether a cached matching was eligible but the engine ran cold
    /// anyway (dirty fraction over the limit, or divergence detected).
    pub fallback: bool,
    /// Blocking pairs of the result (0 at convergence).
    pub blocking_pairs: u64,
    /// `|E|` of the resolved instance.
    pub num_edges: u64,
    /// Matched pairs.
    pub matched: u64,
    /// The market epoch this resolve observed (stamped by the caller).
    pub epoch: u64,
}

/// Mutable loop state: the matching plus each man's proposal pointer.
struct LoopState {
    matching: Matching,
    /// `next[j]`: index into man `j`'s list of his current target.
    next: Vec<usize>,
}

/// Cold solve: the standard Gale–Shapley loop from scratch.
pub(crate) fn resolve_cold(inst: &Instance) -> ResolveReport {
    let state = LoopState {
        matching: Matching::new(inst.ids().num_players()),
        next: vec![0; inst.ids().num_men()],
    };
    run_loop(inst, state, false)
}

/// Warm solve: rewind cascade, then the loop. Returns `None` when the
/// converged result busts the `ε·|E|` budget (divergence — the caller
/// falls back cold). With a correct cascade the loop converges to a
/// *stable* matching, so this safety net should never trip; it exists
/// so an engine bug degrades to cold-solve latency, not to unstable
/// matchings.
pub(crate) fn resolve_warm(
    inst: &Instance,
    eps: f64,
    cached: &[Option<u32>],
    dirty_men: &BTreeSet<u32>,
    dirty_women: &BTreeSet<u32>,
) -> Option<ResolveReport> {
    let state = rewind_cascade(inst, cached, dirty_men, dirty_women);
    debug_assert!(
        cascade_invariant_holds(inst, &state),
        "rewind cascade must restore the GS loop invariant"
    );
    let report = run_loop(inst, state, true);
    let budget = eps * report.num_edges as f64;
    if report.blocking_pairs as f64 > budget {
        return None;
    }
    Some(report)
}

/// Debug check: every woman a man's pointer has skipped must hold a
/// partner she strictly prefers — the precondition under which resuming
/// the propose-accept loop converges to a stable matching. Not
/// `cfg`-gated: `debug_assert!` name-resolves its condition in release
/// builds too (the call just compiles to nothing).
fn cascade_invariant_holds(inst: &Instance, state: &LoopState) -> bool {
    let ids = inst.ids();
    (0..ids.num_men()).all(|j| {
        let m = ids.man(j);
        inst.prefs(m).ranked().iter().take(state.next[j]).all(|&w| {
            match state.matching.partner(w) {
                Some(p) => inst.rank(w, p) < inst.rank(w, m),
                None => false,
            }
        })
    })
}

/// Restores the GS loop invariant from the cached matching (see the
/// module docs for the correctness argument).
fn rewind_cascade(
    inst: &Instance,
    cached: &[Option<u32>],
    dirty_men: &BTreeSet<u32>,
    dirty_women: &BTreeSet<u32>,
) -> LoopState {
    let ids = inst.ids();
    let num_women = ids.num_women();
    let num_men = ids.num_men();
    let mut matching = Matching::new(ids.num_players());
    let mut next = vec![0usize; num_men];
    let mut worklist: Vec<usize> = Vec::new();
    let mut queued = vec![false; num_women];
    let push = |worklist: &mut Vec<usize>, queued: &mut Vec<bool>, wi: usize| {
        if !queued[wi] {
            queued[wi] = true;
            worklist.push(wi);
        }
    };

    // Steps 1–2: re-install surviving pairs and derive pointers.
    #[allow(clippy::needless_range_loop)] // j indexes men, pointers, and the cache alike
    for j in 0..num_men {
        let m = ids.man(j);
        let pair = cached.get(j).copied().flatten();
        if dirty_men.contains(&(j as u32)) {
            // Dirtied proposer: unmatched, pointer at the top. His freed
            // partner (if the edge even survived) must cascade.
            if let Some(wi) = pair {
                if (wi as usize) < num_women {
                    push(&mut worklist, &mut queued, wi as usize);
                }
            }
            continue;
        }
        match pair {
            Some(wi) => {
                let w = ids.woman(wi as usize);
                match inst.rank(m, w) {
                    Some(rank) => {
                        matching
                            .add_pair(m, w)
                            .expect("cached matching pairs are disjoint");
                        // Ranks are 1-based (`P_v(u)`); the pointer is the
                        // 0-based index of his partner in his ranked list.
                        next[j] = rank as usize - 1;
                    }
                    None => {
                        // Edge deleted by a mutation (symmetric closure
                        // dirtied both endpoints; the woman is already
                        // in `dirty_women`). Pointer restarts at the
                        // top only for dirty men, so a clean man whose
                        // pair dissolved… cannot exist: deleting the
                        // edge dirtied him too. Defensive: treat like a
                        // dirty man.
                        push(&mut worklist, &mut queued, wi as usize);
                    }
                }
            }
            // Clean and unmatched at the previous convergence: he was
            // rejected everywhere, and his list is unchanged.
            None => next[j] = inst.degree(m),
        }
    }
    for &wi in dirty_women {
        if (wi as usize) < num_women {
            push(&mut worklist, &mut queued, wi as usize);
        }
    }

    // Step 3: drain the worklist.
    while let Some(wi) = worklist.pop() {
        queued[wi] = false;
        let w = ids.woman(wi);
        // Scan strictly above her current holding (her whole list when
        // free): any man there who has already passed her must rewind.
        let threshold = match matching.partner(w) {
            Some(p) => inst.rank(w, p).expect("partner is acceptable") as usize - 1,
            None => inst.degree(w),
        };
        for &m in inst.prefs(w).ranked().iter().take(threshold) {
            let j = ids.side_index(m);
            let w_pos = inst.rank(m, w).expect("symmetric preferences") as usize - 1;
            if next[j] <= w_pos {
                continue; // He has not reached her yet; the loop will.
            }
            match matching.partner(m) {
                Some(p) => {
                    let p_pos = inst.rank(m, p).expect("partner is acceptable") as usize - 1;
                    if w_pos < p_pos {
                        // He strictly prefers the freed/edited woman:
                        // re-propose from her; his partner cascades.
                        matching.remove(m);
                        next[j] = w_pos;
                        push(&mut worklist, &mut queued, ids.side_index(p));
                    }
                }
                None => next[j] = w_pos,
            }
        }
    }

    LoopState { matching, next }
}

/// The synchronous propose-accept loop (the cycle structure of
/// `asm_core::baselines::distributed_gs`, generalized to start from any
/// invariant-respecting state). Runs to quiescence.
fn run_loop(inst: &Instance, state: LoopState, warm: bool) -> ResolveReport {
    let ids = inst.ids();
    let LoopState {
        mut matching,
        mut next,
    } = state;
    let mut cycles: u64 = 0;
    let mut proposals: u64 = 0;

    loop {
        // Propose round (man-id order, as a CONGEST inbox delivers).
        let mut received: Vec<Vec<usize>> = vec![Vec::new(); ids.num_women()];
        let mut any = false;
        #[allow(clippy::needless_range_loop)] // j indexes men and pointers alike
        for j in 0..ids.num_men() {
            let m = ids.man(j);
            if matching.is_matched(m) {
                continue;
            }
            if let Some(&w) = inst.prefs(m).ranked().get(next[j]) {
                received[ids.side_index(w)].push(j);
                proposals += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
        cycles += 1;
        // Accept/reject round.
        #[allow(clippy::needless_range_loop)] // i indexes women and inboxes alike
        for i in 0..ids.num_women() {
            if received[i].is_empty() {
                continue;
            }
            let w = ids.woman(i);
            let best = *received[i]
                .iter()
                .min_by_key(|&&j| inst.rank(w, ids.man(j)).expect("proposer is acceptable"))
                .expect("nonempty");
            let keep_current = match matching.partner(w) {
                Some(p) => inst.rank(w, p) < inst.rank(w, ids.man(best)),
                None => false,
            };
            let winner = if keep_current {
                ids.side_index(matching.partner(w).expect("checked above"))
            } else {
                if let Some(old) = matching.remove(w) {
                    next[ids.side_index(old)] += 1;
                }
                matching
                    .add_pair(ids.man(best), w)
                    .expect("both free after removal");
                best
            };
            for &j in &received[i] {
                if j != winner {
                    next[j] += 1;
                }
            }
        }
    }

    let stability = StabilityReport::analyze(inst, &matching);
    ResolveReport {
        matched: matching.len() as u64,
        matching,
        cycles,
        rounds: 2 * cycles,
        proposals,
        warm,
        fallback: false,
        blocking_pairs: stability.blocking_pairs as u64,
        num_edges: inst.num_edges() as u64,
        epoch: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{MarketState, MutationOp, ResolveMode, Side};
    use asm_instance::generators;

    fn market(n: usize, d: usize, seed: u64) -> MarketState {
        MarketState::from_instance(&generators::regular(n, d, seed), 0.5).unwrap()
    }

    #[test]
    fn cold_resolve_matches_distributed_gs() {
        for seed in 0..6 {
            let inst = generators::erdos_renyi(12, 12, 0.5, seed);
            let gs = asm_core::baselines::distributed_gs(&inst);
            let cold = resolve_cold(&inst);
            assert_eq!(cold.matching, gs.matching, "seed {seed}");
            assert_eq!(cold.cycles, gs.cycles, "seed {seed}");
            assert_eq!(cold.proposals, gs.proposals, "seed {seed}");
            assert_eq!(cold.blocking_pairs, 0, "GS converges stable");
        }
    }

    #[test]
    fn noop_warm_resolve_costs_zero_rounds() {
        let mut state = market(16, 4, 7);
        let cold = state.resolve(ResolveMode::Auto);
        assert!(!cold.warm, "first resolve has no cache");
        assert!(!cold.fallback, "nothing to fall back from");
        let again = state.resolve(ResolveMode::Auto);
        assert!(again.warm);
        assert_eq!(again.rounds, 0, "clean market: no proposals needed");
        assert_eq!(again.matching, cold.matching);
    }

    #[test]
    fn warm_resolve_is_stable_after_single_agent_edits() {
        for seed in 0..10 {
            let mut state = market(24, 5, seed);
            state.resolve(ResolveMode::Auto);
            // Downgrade one man's list (reverse it) — displacements must
            // cascade through the rewind, not linger as blocking pairs.
            let j = (seed % 24) as u32;
            let inst = state.instance();
            let ids = inst.ids();
            let mut prefs: Vec<u32> = inst
                .prefs(ids.man(j as usize))
                .ranked()
                .iter()
                .map(|&w| ids.side_index(w) as u32)
                .collect();
            prefs.reverse();
            state
                .apply(&MutationOp::SetPrefs {
                    side: Side::Men,
                    index: j,
                    prefs,
                })
                .unwrap();
            let warm = state.resolve(ResolveMode::Warm);
            assert!(warm.warm, "seed {seed}");
            assert!(!warm.fallback, "seed {seed}");
            assert_eq!(
                warm.blocking_pairs, 0,
                "warm resolve converges stable (seed {seed})"
            );
        }
    }

    #[test]
    fn warm_equals_cold_stability_when_a_woman_reorders() {
        // Reordering a woman's list is the canonical trap: men she
        // rejected earlier may now outrank her partner, and only the
        // rewind cascade makes them re-propose.
        for seed in 0..10 {
            let mut state = market(20, 4, seed);
            state.resolve(ResolveMode::Auto);
            let inst = state.instance();
            let ids = inst.ids();
            let i = (seed % 20) as usize;
            let mut prefs: Vec<u32> = inst
                .prefs(ids.woman(i))
                .ranked()
                .iter()
                .map(|&m| ids.side_index(m) as u32)
                .collect();
            prefs.reverse();
            state
                .apply(&MutationOp::SetPrefs {
                    side: Side::Women,
                    index: i as u32,
                    prefs,
                })
                .unwrap();
            let warm = state.resolve(ResolveMode::Warm);
            assert_eq!(warm.blocking_pairs, 0, "seed {seed}");
        }
    }

    #[test]
    fn auto_mode_falls_back_cold_over_the_dirty_limit() {
        let mut state = market(16, 4, 3);
        state.resolve(ResolveMode::Auto);
        // Dirty well over a quarter of the agents.
        for j in 0..12u32 {
            state
                .apply(&MutationOp::SetPrefs {
                    side: Side::Men,
                    index: j,
                    prefs: vec![j % 16, (j + 1) % 16],
                })
                .unwrap();
        }
        let report = state.resolve(ResolveMode::Auto);
        assert!(!report.warm);
        assert!(report.fallback, "cache existed but cold ran");
        assert_eq!(report.blocking_pairs, 0);
    }

    #[test]
    fn warm_rounds_beat_cold_rounds_on_single_edits() {
        // The acceptance criterion in miniature: across seeds, a
        // single-agent edit must warm-resolve in strictly fewer rounds
        // than the cold solve of the same mutated market (in aggregate).
        let mut warm_total = 0u64;
        let mut cold_total = 0u64;
        for seed in 0..12 {
            let mut state = market(32, 6, seed);
            state.resolve(ResolveMode::Auto);
            state
                .apply(&MutationOp::SetPrefs {
                    side: Side::Men,
                    index: (seed % 32) as u32,
                    prefs: vec![(seed % 32) as u32, ((seed + 7) % 32) as u32],
                })
                .unwrap();
            let mut fork = state.clone();
            let warm = state.resolve(ResolveMode::Warm);
            let cold = fork.resolve(ResolveMode::Cold);
            assert!(warm.warm && !cold.warm);
            assert_eq!(warm.blocking_pairs, 0);
            assert_eq!(cold.blocking_pairs, 0);
            warm_total += warm.rounds;
            cold_total += cold.rounds;
        }
        assert!(
            warm_total < cold_total,
            "warm {warm_total} rounds vs cold {cold_total}"
        );
    }

    #[test]
    fn arrivals_and_departures_stay_stable_warm() {
        let mut state = market(12, 4, 5);
        state.resolve(ResolveMode::Auto);
        state
            .apply(&MutationOp::AddAgent {
                side: Side::Men,
                prefs: vec![0, 1, 2, 3],
            })
            .unwrap();
        let after_arrival = state.resolve(ResolveMode::Warm);
        assert_eq!(after_arrival.blocking_pairs, 0);
        state
            .apply(&MutationOp::RemoveAgent {
                side: Side::Women,
                index: 0,
            })
            .unwrap();
        let after_departure = state.resolve(ResolveMode::Warm);
        assert_eq!(after_departure.blocking_pairs, 0);
        // Departed agents stay unmatched.
        let inst = state.instance();
        assert!(!after_departure.matching.is_matched(inst.ids().woman(0)));
    }

    #[test]
    fn warm_resolve_equals_cold_welfare_on_chain_displacement() {
        // The adversarial chain serializes displacements; a top edit
        // warm-starts into the worst case and must still converge
        // stable.
        let inst = generators::adversarial_chain(16);
        let mut state = MarketState::from_instance(&inst, 0.5).unwrap();
        state.resolve(ResolveMode::Auto);
        // Cut the chain's head: remove man 0 entirely.
        state
            .apply(&MutationOp::RemoveAgent {
                side: Side::Men,
                index: 0,
            })
            .unwrap();
        let warm = state.resolve(ResolveMode::Warm);
        assert_eq!(warm.blocking_pairs, 0);
    }
}
