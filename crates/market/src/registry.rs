//! Shard-local registry of persistent markets.

use crate::state::{MarketError, MarketState};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A registry of live markets keyed by market id.
///
/// The service tier owns one registry per shard and routes every market
/// op for a given id to the shard `label_hash(id) % shards`, so a
/// market's mutations are serialized by construction. Each market is
/// individually locked: resolves on different markets of the same shard
/// never contend beyond the brief map lookup.
#[derive(Default)]
pub struct MarketRegistry {
    inner: Mutex<HashMap<String, Arc<Mutex<MarketState>>>>,
}

impl MarketRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new market under `id`.
    ///
    /// Fails with [`MarketError::MarketExists`] when the id is taken —
    /// re-creating a live market would silently discard its cached
    /// matching, so callers must `drop` first.
    pub fn create(&self, id: &str, state: MarketState) -> Result<(), MarketError> {
        let mut map = self.inner.lock().expect("registry lock");
        if map.contains_key(id) {
            return Err(MarketError::MarketExists(id.to_string()));
        }
        map.insert(id.to_string(), Arc::new(Mutex::new(state)));
        Ok(())
    }

    /// Looks up a live market. The returned handle stays valid across a
    /// concurrent `drop_market` (the state is reference-counted).
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<MarketState>>> {
        self.inner.lock().expect("registry lock").get(id).cloned()
    }

    /// Removes a market, returning its final state handle.
    pub fn drop_market(&self, id: &str) -> Option<Arc<Mutex<MarketState>>> {
        self.inner.lock().expect("registry lock").remove(id)
    }

    /// Number of live markets.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").len()
    }

    /// Whether the registry holds no markets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;

    fn state() -> MarketState {
        MarketState::from_instance(&generators::regular(6, 3, 1), 0.5).unwrap()
    }

    #[test]
    fn create_get_drop_lifecycle() {
        let reg = MarketRegistry::new();
        assert!(reg.is_empty());
        reg.create("alpha", state()).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("beta").is_none());
        assert!(reg.drop_market("alpha").is_some());
        assert!(reg.drop_market("alpha").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let reg = MarketRegistry::new();
        reg.create("alpha", state()).unwrap();
        let err = reg.create("alpha", state()).unwrap_err();
        assert!(matches!(err, MarketError::MarketExists(ref id) if id == "alpha"));
        assert_eq!(reg.len(), 1, "original market untouched");
    }

    #[test]
    fn handles_survive_a_concurrent_drop() {
        let reg = MarketRegistry::new();
        reg.create("alpha", state()).unwrap();
        let handle = reg.get("alpha").unwrap();
        reg.drop_market("alpha");
        let guard = handle.lock().unwrap();
        assert_eq!(guard.agents(), 12);
    }
}
