//! One persistent market: mutable symmetric preferences, the cached
//! matching, and per-agent dirty sets.

use crate::engine::{self, ResolveReport, WARM_DIRTY_LIMIT};
use asm_instance::{IdSpace, Instance, PreferenceList};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Which side of the market an agent index refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// The proposal-receiving side (side index `i` = node id `i`).
    Women,
    /// The proposing side (side index `j` = node id `num_women + j`).
    Men,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Women => write!(f, "women"),
            Side::Men => write!(f, "men"),
        }
    }
}

/// One market mutation. Every op maintains the symmetric-preferences
/// invariant: editing an agent's list also patches the counterpart lists
/// (removed partners delete the agent; added partners append it at worst
/// rank), and every touched endpoint is marked dirty.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MutationOp {
    /// Replace one agent's full preference list (ordered opposite-side
    /// indices, best first).
    SetPrefs {
        /// The agent's side.
        side: Side,
        /// The agent's side index.
        index: u32,
        /// The new ranked list of opposite-side indices.
        prefs: Vec<u32>,
    },
    /// Append a new agent to one side with the given preference list.
    /// Existing counterpart lists gain the newcomer at worst rank.
    AddAgent {
        /// The side the agent joins.
        side: Side,
        /// The newcomer's ranked list of opposite-side indices.
        prefs: Vec<u32>,
    },
    /// Remove an agent from the market. The slot is retained (indices
    /// stay stable; the agent's list becomes empty and it leaves every
    /// counterpart list) — this models a departure without renumbering.
    RemoveAgent {
        /// The agent's side.
        side: Side,
        /// The agent's side index.
        index: u32,
    },
}

/// How a `resolve` should run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveMode {
    /// Warm-start when a cached matching exists and the dirty fraction
    /// is under [`WARM_DIRTY_LIMIT`]; cold otherwise.
    Auto,
    /// Force a warm start (still falls back cold when no cached matching
    /// exists or divergence is detected).
    Warm,
    /// Force a cold solve.
    Cold,
}

impl ResolveMode {
    /// Parses the wire name (`auto`, `warm`, `cold`).
    pub fn parse(name: &str) -> Option<ResolveMode> {
        match name {
            "auto" => Some(ResolveMode::Auto),
            "warm" => Some(ResolveMode::Warm),
            "cold" => Some(ResolveMode::Cold),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ResolveMode::Auto => "auto",
            ResolveMode::Warm => "warm",
            ResolveMode::Cold => "cold",
        }
    }
}

/// Why a market operation was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum MarketError {
    /// ε must be positive and finite.
    InvalidEps(f64),
    /// An agent index is out of range for its side.
    UnknownAgent {
        /// The side the index was interpreted on.
        side: Side,
        /// The offending index.
        index: u32,
        /// Current number of agents on that side.
        count: u32,
    },
    /// A preference list references an out-of-range partner index.
    UnknownPartner {
        /// The opposite side.
        side: Side,
        /// The offending partner index.
        index: u32,
        /// Current number of agents on the opposite side.
        count: u32,
    },
    /// A preference list lists the same partner twice.
    DuplicatePartner {
        /// The duplicated partner index.
        index: u32,
    },
    /// The market id is not registered.
    UnknownMarket(String),
    /// The market id is already registered.
    MarketExists(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InvalidEps(eps) => {
                write!(f, "eps must be positive and finite, got {eps}")
            }
            MarketError::UnknownAgent { side, index, count } => {
                write!(f, "no agent {index} on the {side} side ({count} agents)")
            }
            MarketError::UnknownPartner { side, index, count } => write!(
                f,
                "preference list names partner {index}, but the {side} side has {count} agents"
            ),
            MarketError::DuplicatePartner { index } => {
                write!(f, "preference list names partner {index} twice")
            }
            MarketError::UnknownMarket(id) => write!(f, "unknown market `{id}`"),
            MarketError::MarketExists(id) => write!(f, "market `{id}` already exists"),
        }
    }
}

impl std::error::Error for MarketError {}

/// One persistent market: symmetric preference lists on both sides
/// (stored as side indices so agent identities survive arrivals), the
/// matching cached by the last resolve, and the dirty sets the next
/// warm start consumes.
#[derive(Clone, Debug)]
pub struct MarketState {
    eps: f64,
    /// `women[i]` = woman `i`'s ranked men side-indices, best first.
    women: Vec<Vec<u32>>,
    /// `men[j]` = man `j`'s ranked women side-indices, best first.
    men: Vec<Vec<u32>>,
    /// Cached matching of the last resolve: `man_partner[j]` is man
    /// `j`'s woman side-index. Side-indexed (not node ids) so arrivals
    /// on either side never shift cached pairs.
    man_partner: Vec<Option<u32>>,
    /// Whether `man_partner` reflects a completed resolve.
    has_matching: bool,
    dirty_men: BTreeSet<u32>,
    dirty_women: BTreeSet<u32>,
    /// Bumped once per applied mutation op.
    epoch: u64,
}

impl MarketState {
    /// Creates a market from an instance snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidEps`] unless `0 < eps < ∞`.
    pub fn from_instance(inst: &Instance, eps: f64) -> Result<Self, MarketError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(MarketError::InvalidEps(eps));
        }
        let ids = inst.ids();
        let women = ids
            .women()
            .map(|w| {
                inst.prefs(w)
                    .ranked()
                    .iter()
                    .map(|&m| ids.side_index(m) as u32)
                    .collect()
            })
            .collect();
        let men = ids
            .men()
            .map(|m| {
                inst.prefs(m)
                    .ranked()
                    .iter()
                    .map(|&w| ids.side_index(w) as u32)
                    .collect()
            })
            .collect();
        Ok(MarketState {
            eps,
            women,
            men,
            man_partner: vec![None; ids.num_men()],
            has_matching: false,
            dirty_men: BTreeSet::new(),
            dirty_women: BTreeSet::new(),
            epoch: 0,
        })
    }

    /// The blocking-pair budget ε this market was created with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of women slots (including removed agents' empty slots).
    pub fn num_women(&self) -> usize {
        self.women.len()
    }

    /// Number of men slots (including removed agents' empty slots).
    pub fn num_men(&self) -> usize {
        self.men.len()
    }

    /// Total agent slots.
    pub fn agents(&self) -> usize {
        self.women.len() + self.men.len()
    }

    /// Mutation epoch: the number of ops applied since creation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(dirty men, dirty women)` pending for the next warm start.
    pub fn dirty_counts(&self) -> (usize, usize) {
        (self.dirty_men.len(), self.dirty_women.len())
    }

    /// Whether a cached matching exists to warm-start from.
    pub fn has_matching(&self) -> bool {
        self.has_matching
    }

    /// Total acceptable pairs (Σ men degrees).
    pub fn num_edges(&self) -> usize {
        self.men.iter().map(Vec::len).sum()
    }

    /// Applies one mutation, maintaining preference symmetry and dirty
    /// sets, and bumps the epoch.
    ///
    /// # Errors
    ///
    /// Returns the validation failure without mutating anything.
    pub fn apply(&mut self, op: &MutationOp) -> Result<(), MarketError> {
        match op {
            MutationOp::SetPrefs { side, index, prefs } => {
                self.check_agent(*side, *index)?;
                self.check_prefs(side.opposite_count(self), *side, prefs)?;
                self.set_prefs(*side, *index, prefs.clone());
            }
            MutationOp::AddAgent { side, prefs } => {
                self.check_prefs(side.opposite_count(self), *side, prefs)?;
                let index = match side {
                    Side::Women => {
                        self.women.push(Vec::new());
                        (self.women.len() - 1) as u32
                    }
                    Side::Men => {
                        self.men.push(Vec::new());
                        self.man_partner.push(None);
                        (self.men.len() - 1) as u32
                    }
                };
                self.set_prefs(*side, index, prefs.clone());
            }
            MutationOp::RemoveAgent { side, index } => {
                self.check_agent(*side, *index)?;
                self.set_prefs(*side, *index, Vec::new());
            }
        }
        self.epoch += 1;
        Ok(())
    }

    fn check_agent(&self, side: Side, index: u32) -> Result<(), MarketError> {
        let count = match side {
            Side::Women => self.women.len(),
            Side::Men => self.men.len(),
        } as u32;
        if index >= count {
            return Err(MarketError::UnknownAgent { side, index, count });
        }
        Ok(())
    }

    fn check_prefs(&self, opposite: usize, side: Side, prefs: &[u32]) -> Result<(), MarketError> {
        let mut seen = BTreeSet::new();
        for &p in prefs {
            if p as usize >= opposite {
                return Err(MarketError::UnknownPartner {
                    side: match side {
                        Side::Women => Side::Men,
                        Side::Men => Side::Women,
                    },
                    index: p,
                    count: opposite as u32,
                });
            }
            if !seen.insert(p) {
                return Err(MarketError::DuplicatePartner { index: p });
            }
        }
        Ok(())
    }

    /// The symmetric-closure write: installs `prefs` for the agent,
    /// deletes it from dropped partners' lists, appends it (worst rank)
    /// to gained partners' lists, and dirties every touched endpoint.
    fn set_prefs(&mut self, side: Side, index: u32, prefs: Vec<u32>) {
        let old: BTreeSet<u32> = match side {
            Side::Women => self.women[index as usize].iter().copied().collect(),
            Side::Men => self.men[index as usize].iter().copied().collect(),
        };
        let new: BTreeSet<u32> = prefs.iter().copied().collect();
        for &p in old.difference(&new) {
            match side {
                Side::Women => {
                    self.men[p as usize].retain(|&x| x != index);
                    self.dirty_men.insert(p);
                }
                Side::Men => {
                    self.women[p as usize].retain(|&x| x != index);
                    self.dirty_women.insert(p);
                }
            }
        }
        for &p in new.difference(&old) {
            match side {
                Side::Women => {
                    self.men[p as usize].push(index);
                    self.dirty_men.insert(p);
                }
                Side::Men => {
                    self.women[p as usize].push(index);
                    self.dirty_women.insert(p);
                }
            }
        }
        match side {
            Side::Women => {
                self.women[index as usize] = prefs;
                self.dirty_women.insert(index);
            }
            Side::Men => {
                self.men[index as usize] = prefs;
                self.dirty_men.insert(index);
            }
        }
    }

    /// Derives one deterministic mutation from `seed` and the current
    /// market shape: mostly single-agent preference edits (reorders,
    /// truncations, new edges), with occasional arrivals and departures.
    ///
    /// A pure function of `(current lists, seed)`, so a client that
    /// mirrors the applied op stream derives the identical next op — the
    /// churn workload and the cross-family property test both rely on
    /// this to replay server-side mutations locally.
    pub fn seeded_op(&self, seed: u64) -> MutationOp {
        let mut rng = SplitMix(seed);
        let kind = rng.below(10);
        let side = if rng.below(2) == 0 {
            Side::Women
        } else {
            Side::Men
        };
        let count = match side {
            Side::Women => self.women.len(),
            Side::Men => self.men.len(),
        };
        let opposite = side.opposite_count(self);
        match kind {
            // Arrival: a newcomer ranking a random sample of the
            // opposite side.
            0 => {
                let want = 1 + rng.below(opposite.clamp(1, 6) as u64) as usize;
                let mut prefs: Vec<u32> = (0..opposite as u32).collect();
                rng.shuffle(&mut prefs);
                prefs.truncate(want.min(opposite));
                MutationOp::AddAgent { side, prefs }
            }
            // Departure (arrival instead when the side is empty).
            1 if count > 0 => MutationOp::RemoveAgent {
                side,
                index: rng.below(count as u64) as u32,
            },
            // Preference edit on one existing agent.
            _ => {
                if count == 0 {
                    return MutationOp::AddAgent {
                        side,
                        prefs: Vec::new(),
                    };
                }
                let index = rng.below(count as u64) as u32;
                let mut prefs = match side {
                    Side::Women => self.women[index as usize].clone(),
                    Side::Men => self.men[index as usize].clone(),
                };
                match rng.below(4) {
                    // Reorder the whole list.
                    0 => rng.shuffle(&mut prefs),
                    // Sever the tail (prefix survives in order).
                    1 => prefs.truncate(prefs.len() / 2),
                    // Swap two ranks.
                    2 if prefs.len() >= 2 => {
                        let a = rng.below(prefs.len() as u64) as usize;
                        let b = rng.below(prefs.len() as u64) as usize;
                        prefs.swap(a, b);
                    }
                    // Grow: insert one currently-unranked partner at a
                    // random rank (no-op when the list is complete).
                    _ => {
                        let have: BTreeSet<u32> = prefs.iter().copied().collect();
                        let missing: Vec<u32> =
                            (0..opposite as u32).filter(|p| !have.contains(p)).collect();
                        if !missing.is_empty() {
                            let p = missing[rng.below(missing.len() as u64) as usize];
                            let at = rng.below(prefs.len() as u64 + 1) as usize;
                            prefs.insert(at, p);
                        }
                    }
                }
                MutationOp::SetPrefs { side, index, prefs }
            }
        }
    }

    /// Materializes the current preferences as an [`Instance`] (women
    /// are node ids `0..num_women`, men `num_women..`).
    pub fn instance(&self) -> Instance {
        let ids = IdSpace::new(self.women.len(), self.men.len());
        let mut prefs = Vec::with_capacity(ids.num_players());
        for list in &self.women {
            prefs.push(PreferenceList::new(
                list.iter().map(|&j| ids.man(j as usize)).collect(),
            ));
        }
        for list in &self.men {
            prefs.push(PreferenceList::new(
                list.iter().map(|&i| ids.woman(i as usize)).collect(),
            ));
        }
        Instance::from_prefs(ids, prefs).expect("market state maintains the symmetry invariant")
    }

    /// Resolves the market: re-enters the propose-accept loop warm from
    /// the cached matching (dirtied proposers unmatched, freed or edited
    /// receivers cascaded) or runs a cold solve, caches the resulting
    /// matching, and clears the dirty sets.
    ///
    /// Fallback contract ([`ResolveReport::fallback`] is set whenever a
    /// cached matching was eligible to warm from but cold ran instead):
    /// `Warm`/`Auto` run cold when no cached matching exists (the first
    /// resolve — not a fallback, there is nothing to fall back from);
    /// `Auto` goes cold when the dirty fraction exceeds
    /// [`WARM_DIRTY_LIMIT`]; and any warm result whose blocking-pair
    /// count exceeds the market's `ε·|E|` budget (divergence — the
    /// engine's safety net, not an expected path) is discarded for a
    /// cold re-solve.
    pub fn resolve(&mut self, mode: ResolveMode) -> ResolveReport {
        let inst = self.instance();
        let dirty = self.dirty_men.len() + self.dirty_women.len();
        let fraction = dirty as f64 / (self.agents() as f64).max(1.0);
        let try_warm = match mode {
            ResolveMode::Cold => false,
            ResolveMode::Warm => self.has_matching,
            ResolveMode::Auto => self.has_matching && fraction <= WARM_DIRTY_LIMIT,
        };
        let mut report = if try_warm {
            let warm = engine::resolve_warm(
                &inst,
                self.eps,
                &self.man_partner,
                &self.dirty_men,
                &self.dirty_women,
            );
            match warm {
                Some(report) => report,
                None => {
                    // Divergence detected: the warm result busted the
                    // ε·|E| budget. Discard it and solve cold.
                    let mut cold = engine::resolve_cold(&inst);
                    cold.fallback = true;
                    cold
                }
            }
        } else {
            let mut cold = engine::resolve_cold(&inst);
            // A fallback is "warm was on the table but we ran cold":
            // explicit cold requests don't count.
            cold.fallback = mode != ResolveMode::Cold && self.has_matching;
            cold
        };
        report.epoch = self.epoch;
        let ids = inst.ids();
        for j in 0..self.men.len() {
            self.man_partner[j] = report
                .matching
                .partner(ids.man(j))
                .map(|w| ids.side_index(w) as u32);
        }
        self.has_matching = true;
        self.dirty_men.clear();
        self.dirty_women.clear();
        report
    }
}

/// Minimal splitmix64 stream for [`MarketState::seeded_op`] — the crate
/// takes no RNG dependency, and op derivation must be bit-stable across
/// client and server builds.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough draw in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Fisher–Yates shuffle.
    fn shuffle(&mut self, xs: &mut [u32]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl Side {
    fn opposite_count(&self, state: &MarketState) -> usize {
        match self {
            Side::Women => state.men.len(),
            Side::Men => state.women.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;

    fn market(n: usize, seed: u64) -> MarketState {
        MarketState::from_instance(&generators::regular(n, 3.min(n), seed), 0.5).unwrap()
    }

    #[test]
    fn creation_mirrors_the_instance() {
        let inst = generators::complete(6, 1);
        let state = MarketState::from_instance(&inst, 0.5).unwrap();
        assert_eq!(state.num_women(), 6);
        assert_eq!(state.num_men(), 6);
        assert_eq!(state.num_edges(), inst.num_edges());
        assert_eq!(state.instance(), inst);
        assert_eq!(state.epoch(), 0);
        assert!(!state.has_matching());
    }

    #[test]
    fn bad_eps_is_rejected() {
        let inst = generators::complete(2, 1);
        for eps in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            assert!(matches!(
                MarketState::from_instance(&inst, eps),
                Err(MarketError::InvalidEps(_))
            ));
        }
    }

    #[test]
    fn set_prefs_keeps_symmetry_and_dirties_both_endpoints() {
        let mut state = market(8, 3);
        let op = MutationOp::SetPrefs {
            side: Side::Men,
            index: 0,
            prefs: vec![0, 1],
        };
        state.apply(&op).unwrap();
        assert_eq!(state.epoch(), 1);
        let inst = state.instance(); // would panic if symmetry broke
        let ids = inst.ids();
        assert_eq!(inst.degree(ids.man(0)), 2);
        let (dm, dw) = state.dirty_counts();
        assert_eq!(dm, 1, "the edited man is dirty");
        assert!(dw >= 1, "every added/removed partner is dirty");
    }

    #[test]
    fn add_agent_appends_at_worst_rank() {
        let mut state = market(4, 1);
        state
            .apply(&MutationOp::AddAgent {
                side: Side::Men,
                prefs: vec![0, 2],
            })
            .unwrap();
        assert_eq!(state.num_men(), 5);
        let inst = state.instance();
        let ids = inst.ids();
        let newcomer = ids.man(4);
        // The newcomer is each named woman's worst-ranked partner.
        for wi in [0usize, 2] {
            let w = ids.woman(wi);
            assert_eq!(
                inst.prefs(w).ranked().last().copied(),
                Some(newcomer),
                "woman {wi} gained the newcomer at worst rank"
            );
        }
    }

    #[test]
    fn remove_agent_empties_the_slot_but_keeps_indices_stable() {
        let mut state = market(6, 2);
        let before_women = state.num_women();
        state
            .apply(&MutationOp::RemoveAgent {
                side: Side::Women,
                index: 2,
            })
            .unwrap();
        assert_eq!(state.num_women(), before_women, "slot retained");
        let inst = state.instance();
        assert_eq!(inst.degree(inst.ids().woman(2)), 0);
        // No man still lists her.
        for m in inst.ids().men() {
            assert!(inst.rank(m, inst.ids().woman(2)).is_none());
        }
    }

    #[test]
    fn validation_failures_do_not_mutate() {
        let mut state = market(4, 1);
        let snapshot = state.instance();
        let epoch = state.epoch();
        assert!(matches!(
            state.apply(&MutationOp::SetPrefs {
                side: Side::Men,
                index: 99,
                prefs: vec![]
            }),
            Err(MarketError::UnknownAgent { .. })
        ));
        assert!(matches!(
            state.apply(&MutationOp::SetPrefs {
                side: Side::Men,
                index: 0,
                prefs: vec![99]
            }),
            Err(MarketError::UnknownPartner { .. })
        ));
        assert!(matches!(
            state.apply(&MutationOp::SetPrefs {
                side: Side::Men,
                index: 0,
                prefs: vec![1, 1]
            }),
            Err(MarketError::DuplicatePartner { .. })
        ));
        assert_eq!(state.instance(), snapshot);
        assert_eq!(state.epoch(), epoch);
    }

    #[test]
    fn mutation_ops_round_trip_through_serde() {
        let ops = vec![
            MutationOp::SetPrefs {
                side: Side::Women,
                index: 3,
                prefs: vec![2, 0, 1],
            },
            MutationOp::AddAgent {
                side: Side::Men,
                prefs: vec![1],
            },
            MutationOp::RemoveAgent {
                side: Side::Men,
                index: 0,
            },
        ];
        let json = serde_json::to_string(&ops).unwrap();
        let back: Vec<MutationOp> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn seeded_ops_are_deterministic_and_valid() {
        let mut a = market(10, 4);
        let mut b = market(10, 4);
        for seed in 0..200u64 {
            let op_a = a.seeded_op(seed);
            let op_b = b.seeded_op(seed);
            assert_eq!(op_a, op_b, "same state + seed derives the same op");
            a.apply(&op_a).expect("derived ops always validate");
            b.apply(&op_b).unwrap();
        }
        assert_eq!(a.instance(), b.instance(), "mirrored streams converge");
    }

    #[test]
    fn resolve_modes_parse() {
        for name in ["auto", "warm", "cold"] {
            assert_eq!(ResolveMode::parse(name).unwrap().name(), name);
        }
        assert!(ResolveMode::parse("tepid").is_none());
    }
}
