//! Persistent matching markets with incremental warm-start re-solve.
//!
//! Every op the service stack accepted before this crate was stateless:
//! each `solve` re-ran the propose-accept engine from scratch. A real
//! matching market mutates continuously — preference edits, arrivals,
//! departures — and Floréen et al. ("Almost Stable Matchings in Constant
//! Time") observe that the blocking-pair ratio shrinks linearly with
//! propose-accept rounds, so *warm-starting* from the previous matching
//! should converge in very few rounds after a small edit.
//!
//! This crate provides the three pieces the service tier wires up:
//!
//! * [`MarketState`] — one persistent market: symmetric preference
//!   lists on both sides, the cached matching of the last resolve, and
//!   per-agent dirty sets maintained by [`MutationOp`] application;
//! * [`engine`] — the incremental engine: a *rewind cascade* restores
//!   the Gale–Shapley loop invariant from the cached matching with only
//!   dirtied proposers unmatched, then re-enters the standard
//!   propose-accept round loop ([`MarketState::resolve`] falls back to a
//!   cold solve when divergence is detected or the dirty fraction
//!   crosses [`WARM_DIRTY_LIMIT`]);
//! * [`MarketRegistry`] — a shard-local registry keyed by market id.
//!
//! Determinism: mutations and resolves are pure functions of the market
//! state, so a client that mirrors the same [`MutationOp`] stream
//! reproduces the server's matchings bit-for-bit — the churn workload in
//! `asm-bench` relies on this to verify every resolved matching against
//! a local cold solve via the conformance oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod registry;
mod state;

pub use engine::{ResolveReport, WARM_DIRTY_LIMIT};
pub use registry::MarketRegistry;
pub use state::{MarketError, MarketState, MutationOp, ResolveMode, Side};
