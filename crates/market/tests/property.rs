//! Cross-family churn property: after `k` seeded mutations, a `resolve`
//! (in every mode) must stay within the cold solve's `ε·|E|` blocking
//! budget — checked with the same conformance oracles the differential
//! batteries use, so "stable" means the same thing here as everywhere
//! else in the repo.

use asm_conformance::oracle::{check_blocking_budget, check_matching};
use asm_core::RunSummary;
use asm_instance::generators::GeneratorConfig;
use asm_market::{MarketState, ResolveMode, ResolveReport};
use proptest::prelude::*;

const EPS: f64 = 0.5;

/// Wraps a resolve result as the `RunSummary` the oracles consume. The
/// engine runs to quiescence, so every man is good and none is removed.
fn as_summary(report: &ResolveReport) -> RunSummary {
    RunSummary {
        matching: report.matching.clone(),
        scheduled_proposal_rounds: report.cycles,
        executed_proposal_rounds: report.cycles,
        good_men: 0,
        bad_men: Vec::new(),
        removed_men: Vec::new(),
    }
}

fn check(family: usize, n: usize, gseed: u64, k: usize, mode_idx: usize, op_seed: u64) {
    let families = GeneratorConfig::all_families(n, gseed);
    let config = families[family % families.len()].clone();
    let inst = config.build();
    let mut state = MarketState::from_instance(&inst, EPS).expect("valid eps");
    state.resolve(ResolveMode::Cold);
    for i in 0..k {
        let op = state.seeded_op(op_seed.wrapping_add(i as u64).wrapping_mul(0x9E37));
        state.apply(&op).expect("derived ops always validate");
    }
    let mode = [ResolveMode::Auto, ResolveMode::Warm, ResolveMode::Cold][mode_idx % 3];
    let mut fork = state.clone();
    let report = state.resolve(mode);
    let mutated = state.instance();
    let summary = as_summary(&report);
    let label = format!(
        "family {} n {n} gseed {gseed} k {k} mode {} op_seed {op_seed}",
        config.family(),
        mode.name()
    );
    if let Some(v) = check_matching(&mutated, &summary) {
        panic!("invalid matching after churn ({label}): {v}");
    }
    if let Some(v) = check_blocking_budget(&mutated, &summary, EPS) {
        panic!("blocking budget busted after churn ({label}): {v}");
    }
    // The warm path must match the cold solve's budget exactly: both
    // converge, so both are fully stable on the mutated instance.
    let cold = fork.resolve(ResolveMode::Cold);
    assert_eq!(
        report.blocking_pairs, cold.blocking_pairs,
        "warm and cold resolves are equally stable ({label})"
    );
    assert_eq!(
        report.blocking_pairs, 0,
        "quiescence is stability ({label})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churned_markets_stay_within_the_blocking_budget(
        family in 0usize..16,
        n in 2usize..14,
        gseed in 0u64..1_000,
        k in 1usize..6,
        mode_idx in 0usize..3,
        op_seed in 0u64..100_000,
    ) {
        check(family, n, gseed, k, mode_idx, op_seed);
    }
}
