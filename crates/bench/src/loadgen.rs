//! Deterministic load generation for `asm-service`.
//!
//! A [`MixConfig`] is a *seeded recipe* for a request stream: request `i`
//! is a pure function of the config and `derive_seed(seed, [i])`, so two
//! runs of the same mix send byte-identical requests in the same index
//! order. The [`LoadReport`] separates what is deterministic (request
//! counts by outcome, Σ rounds/messages/blocking-pairs over solved
//! replies) from what is not ([`WallStats`]: wall-clock, throughput,
//! cache-hit observations) — CI asserts that two same-seed runs agree
//! exactly after [`LoadReport::normalized`] strips the wall stats.
//!
//! Two driving modes:
//!
//! * **closed loop** (`open_rate_rps == 0`): `concurrency` connections
//!   each send a request and wait for its reply before taking the next
//!   index — in-flight requests == connections, the classic
//!   fixed-concurrency loadtest.
//! * **open loop** (`open_rate_rps > 0`): each connection paces its
//!   sends at the target aggregate rate regardless of replies
//!   (pipelining on the line protocol), modelling arrival processes that
//!   do not back off — the mode that actually exercises admission
//!   control.
//!
//! The generator can also reconcile its own tallies against the server's
//! `metrics` counters ([`verify_metrics`]) — every frame the generator
//! sent must be accounted for, exactly, in the server's books.

use asm_instance::generators::GeneratorConfig;
use asm_runtime::{derive_seed, SweepCell, SweepReport};
use asm_service::{MetricsSnapshot, Reply, Request, Response, SolveBody};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema version of [`LoadReport`].
pub const LOADGEN_SCHEMA: u64 = 1;

/// A deterministic, seeded request-mix recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MixConfig {
    /// Total solve requests to send.
    pub requests: u64,
    /// Driver threads (and, when `connections` is 0, sockets).
    pub concurrency: u64,
    /// Total sockets to drive. `0` means one socket per `concurrency`
    /// thread (the classic closed-loop shape). `N > concurrency` fans N
    /// sockets out across the `concurrency` threads — each thread
    /// round-robins its share, keeping one frame in flight per socket —
    /// so large connection counts cost the *server* sockets but the
    /// generator only `concurrency` threads.
    pub connections: u64,
    /// Root seed; request `i` uses `derive_seed(seed, [i])`.
    pub seed: u64,
    /// Instance families to cycle through: any of `complete`, `regular`,
    /// `erdos_renyi`, `zipf`, `chain`, `master_list`.
    pub families: Vec<String>,
    /// Instance sizes to cycle through (the size distribution: each
    /// request draws its size from this list by derived seed).
    pub sizes: Vec<u64>,
    /// Algorithms to cycle through (`asm`, `rand-asm`, `almost-regular`,
    /// `gs`, `truncated-gs`).
    pub algorithms: Vec<String>,
    /// ε for every solve.
    pub eps: f64,
    /// δ for the randomized algorithms.
    pub delta: f64,
    /// Per-request queue-wait deadline (0 disables).
    pub deadline_ms: u64,
    /// How many distinct instances before seeds repeat (exercises the
    /// server cache); 0 means every request is distinct.
    pub distinct_instances: u64,
    /// Open-loop aggregate send rate in requests/second; 0 selects the
    /// closed loop.
    pub open_rate_rps: f64,
    /// Batch size: `0`/`1` sends one `solve` frame per request; `N > 1`
    /// groups N consecutive request indices into one `solve_batch`
    /// frame (the frame id is the first index; outcomes are tallied
    /// per item, so every counter below means the same thing in both
    /// modes).
    pub batch: u64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            requests: 100,
            concurrency: 2,
            connections: 0,
            seed: 1,
            families: vec!["regular".to_string(), "complete".to_string()],
            sizes: vec![16, 32],
            algorithms: vec!["asm".to_string(), "gs".to_string()],
            eps: 0.5,
            delta: 0.1,
            deadline_ms: 0,
            distinct_instances: 0,
            open_rate_rps: 0.0,
            batch: 0,
        }
    }
}

impl MixConfig {
    /// The coordinate (family, n) grid this mix covers, in cell order.
    pub fn coordinates(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for family in &self.families {
            for &n in &self.sizes {
                out.push((family.clone(), n));
            }
        }
        out
    }

    /// Builds request `i` of the mix. Pure: depends only on the config
    /// and `i`.
    pub fn request(&self, i: u64) -> Request {
        // Cache pressure: with `distinct_instances = k`, instance identity
        // cycles with period k while the request index keeps advancing.
        let identity = if self.distinct_instances == 0 {
            i
        } else {
            i % self.distinct_instances
        };
        let ds = derive_seed(self.seed, &[identity]);
        let family = &self.families[(identity % self.families.len() as u64) as usize];
        let n = self.sizes[(derive_seed(ds, &[1]) % self.sizes.len() as u64) as usize];
        let algorithm = &self.algorithms[(identity % self.algorithms.len() as u64) as usize];
        let inst_seed = derive_seed(ds, &[2]);
        let instance = instance_config(family, n, inst_seed);
        Request {
            id: Some(i),
            op: asm_service::Op::Solve(SolveBody {
                instance: asm_service::InstanceSpec::Generator(instance),
                algorithm: algorithm.clone(),
                eps: self.eps,
                delta: self.delta,
                seed: derive_seed(ds, &[3]),
                backend: "greedy".to_string(),
                deadline_ms: self.deadline_ms,
                cycles: 8,
            }),
        }
    }

    /// The solve body of request `i` (the item payload shared by single
    /// and batch frames).
    fn solve_body(&self, i: u64) -> SolveBody {
        let asm_service::Op::Solve(body) = self.request(i).op else {
            unreachable!("request always builds a solve")
        };
        body
    }

    /// Builds the `solve_batch` frame covering request indices
    /// `[start, start + count)`. Pure, like [`request`](MixConfig::request);
    /// the frame id is `start`.
    pub fn batch_frame(&self, start: u64, count: u64) -> Request {
        Request {
            id: Some(start),
            op: asm_service::Op::SolveBatch(asm_service::BatchBody {
                items: (start..start + count).map(|i| self.solve_body(i)).collect(),
            }),
        }
    }

    /// The number of request indices each frame covers.
    pub fn stride(&self) -> u64 {
        self.batch.max(1)
    }

    /// The (family, n) coordinate index of request `i`, aligned with
    /// [`coordinates`](MixConfig::coordinates).
    fn coordinate_of(&self, i: u64) -> usize {
        let identity = if self.distinct_instances == 0 {
            i
        } else {
            i % self.distinct_instances
        };
        let ds = derive_seed(self.seed, &[identity]);
        let family_idx = (identity % self.families.len() as u64) as usize;
        let size_idx = (derive_seed(ds, &[1]) % self.sizes.len() as u64) as usize;
        family_idx * self.sizes.len() + size_idx
    }
}

/// Maps a family name + size + seed to a generator recipe (shared with
/// the churn workload, which draws markets from the same families).
pub(crate) fn instance_config(family: &str, n: u64, seed: u64) -> GeneratorConfig {
    let n = n as usize;
    match family {
        "complete" => GeneratorConfig::Complete { n, seed },
        "regular" => GeneratorConfig::Regular {
            n,
            d: (n / 4).max(2),
            seed,
        },
        "erdos_renyi" => GeneratorConfig::ErdosRenyi {
            num_women: n,
            num_men: n,
            p: 0.5,
            seed,
        },
        "zipf" => GeneratorConfig::Zipf {
            n,
            d: (n / 4).max(2),
            s: 1.1,
            seed,
        },
        "chain" => GeneratorConfig::Chain { n },
        "master_list" => GeneratorConfig::MasterList { n, seed },
        other => panic!("unknown loadgen family `{other}` (see MixConfig::families)"),
    }
}

/// Per-coordinate deterministic sums over solved replies.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoordTotals {
    /// Solved replies on this coordinate.
    pub solved: u64,
    /// Σ rounds.
    pub rounds: u64,
    /// Σ messages.
    pub messages: u64,
    /// Σ blocking pairs.
    pub blocking_pairs: u64,
    /// Σ `|E|`.
    pub num_edges: u64,
    /// Σ matched pairs.
    pub matched: u64,
}

/// Nondeterministic measurements, quarantined so the rest of the report
/// can be compared exactly across runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// End-to-end wall-clock of the run, ms.
    pub total_ms: f64,
    /// `sent / total_ms * 1000`.
    pub throughput_rps: f64,
    /// Solved replies that reported `cached: true` (racy by nature: two
    /// identical in-flight requests can both miss).
    pub cached_responses: u64,
}

/// The result of replaying a mix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// [`LOADGEN_SCHEMA`].
    pub schema: u64,
    /// The mix that was replayed (the report is self-describing).
    pub mix: MixConfig,
    /// Requests sent.
    pub sent: u64,
    /// `solved` replies.
    pub succeeded: u64,
    /// `overloaded` replies.
    pub rejected: u64,
    /// `deadline_exceeded` replies.
    pub deadline_exceeded: u64,
    /// `error` replies from the server.
    pub solve_errors: u64,
    /// Frames that were unparseable / wrong-id / transport failures —
    /// always 0 against a healthy server.
    pub protocol_errors: u64,
    /// The server's shard count, as reported by `health` when the run
    /// started (0 if health could not be queried). Deterministic for a
    /// fixed server configuration, and carried into the sweep cells so
    /// shard-count sweeps are comparable side by side.
    pub shards: u64,
    /// Per-(family, n) sums, aligned with [`MixConfig::coordinates`].
    pub coords: Vec<CoordTotals>,
    /// Nondeterministic wall-clock measurements.
    pub wall: WallStats,
}

impl LoadReport {
    /// The report with wall-clock stats zeroed: two same-seed runs must
    /// be equal under this view.
    pub fn normalized(&self) -> LoadReport {
        LoadReport {
            wall: WallStats::default(),
            ..self.clone()
        }
    }

    /// Total rounds across all solved replies.
    pub fn rounds_total(&self) -> u64 {
        self.coords.iter().map(|c| c.rounds).sum()
    }

    /// Total messages across all solved replies.
    pub fn messages_total(&self) -> u64 {
        self.coords.iter().map(|c| c.messages).sum()
    }

    /// Total blocking pairs across all solved replies.
    pub fn blocking_pairs_total(&self) -> u64 {
        self.coords.iter().map(|c| c.blocking_pairs).sum()
    }

    /// Total matched pairs across all solved replies.
    pub fn matched_total(&self) -> u64 {
        self.coords.iter().map(|c| c.matched).sum()
    }

    /// Renders as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("load report serializes")
    }

    /// Converts to a [`SweepReport`] (experiment `loadgen`), one cell per
    /// (family, n) coordinate, compatible with the perf-gate tooling.
    /// `wall_ms` is apportioned by each coordinate's share of solved
    /// replies — like every sweep cell, it is the one nondeterministic
    /// field.
    pub fn to_sweep(&self) -> SweepReport {
        let mut report = SweepReport::new(self.mix.concurrency as usize, false);
        let total_solved: u64 = self.coords.iter().map(|c| c.solved).sum();
        let cells = self
            .mix
            .coordinates()
            .into_iter()
            .zip(&self.coords)
            .map(|((family, n), totals)| {
                let mut cell =
                    SweepCell::new("loadgen", &family, n as usize, self.mix.eps, self.mix.seed);
                cell.shards = self.shards;
                cell.rounds = totals.rounds;
                cell.messages = totals.messages;
                cell.blocking_fraction = if totals.num_edges == 0 {
                    0.0
                } else {
                    totals.blocking_pairs as f64 / totals.num_edges as f64
                };
                cell.wall_ms = if total_solved == 0 {
                    0.0
                } else {
                    self.wall.total_ms * totals.solved as f64 / total_solved as f64
                };
                cell
            })
            .collect();
        report.extend(cells);
        report.total_wall_ms = self.wall.total_ms;
        report
    }
}

/// Per-connection tally, merged deterministically (summed) at the end.
#[derive(Default)]
struct Tally {
    succeeded: u64,
    rejected: u64,
    deadline_exceeded: u64,
    solve_errors: u64,
    protocol_errors: u64,
    cached: u64,
    coords: Vec<CoordTotals>,
}

impl Tally {
    fn new(num_coords: usize) -> Self {
        Tally {
            coords: vec![CoordTotals::default(); num_coords],
            ..Tally::default()
        }
    }

    fn classify(&mut self, mix: &MixConfig, i: u64, line: &str) {
        let response: Response = match serde_json::from_str(line) {
            Ok(response) => response,
            Err(_) => {
                self.protocol_errors += 1;
                return;
            }
        };
        if response.id != Some(i) {
            self.protocol_errors += 1;
            return;
        }
        match response.reply {
            Reply::Solved(result) => self.tally_solved(mix, i, &result),
            Reply::Overloaded(_) => self.rejected += 1,
            Reply::DeadlineExceeded(_) => self.deadline_exceeded += 1,
            Reply::Error(_) => self.solve_errors += 1,
            // A single solve must never draw these replies.
            Reply::SolvedBatch(_)
            | Reply::Analyzed(_)
            | Reply::Health(_)
            | Reply::Metrics(_)
            | Reply::MarketCreated(_)
            | Reply::MarketMutated(_)
            | Reply::Resolved(_)
            | Reply::MarketDropped(_)
            | Reply::ShuttingDown => self.protocol_errors += 1,
        }
    }

    /// Classifies one `solved_batch` reply covering request indices
    /// `[start, start + count)` — per-item outcomes tally exactly like
    /// their single-frame equivalents, so the report (and the server
    /// reconciliation) is batch-transparent.
    fn classify_batch(&mut self, mix: &MixConfig, start: u64, count: u64, line: &str) {
        let response: Response = match serde_json::from_str(line) {
            Ok(response) => response,
            Err(_) => {
                self.protocol_errors += 1;
                return;
            }
        };
        if response.id != Some(start) {
            self.protocol_errors += 1;
            return;
        }
        match response.reply {
            Reply::SolvedBatch(batch) if batch.items.len() as u64 == count => {
                for (j, item) in batch.items.into_iter().enumerate() {
                    let i = start + j as u64;
                    match item {
                        asm_service::BatchItemResult::Solved(result) => {
                            self.tally_solved(mix, i, &result)
                        }
                        asm_service::BatchItemResult::Overloaded(_) => self.rejected += 1,
                        asm_service::BatchItemResult::DeadlineExceeded(_) => {
                            self.deadline_exceeded += 1
                        }
                        asm_service::BatchItemResult::Error(_) => self.solve_errors += 1,
                    }
                }
            }
            // A whole-batch refusal (shutdown) is one server-side error.
            Reply::Error(_) => self.solve_errors += 1,
            _ => self.protocol_errors += 1,
        }
    }

    fn tally_solved(&mut self, mix: &MixConfig, i: u64, result: &asm_service::SolveResult) {
        self.succeeded += 1;
        if result.cached {
            self.cached += 1;
        }
        let coord = &mut self.coords[mix.coordinate_of(i)];
        coord.solved += 1;
        coord.rounds += result.rounds;
        coord.messages += result.messages;
        coord.blocking_pairs += result.blocking_pairs;
        coord.num_edges += result.num_edges;
        coord.matched += result.matched;
    }

    fn merge(&mut self, other: Tally) {
        self.succeeded += other.succeeded;
        self.rejected += other.rejected;
        self.deadline_exceeded += other.deadline_exceeded;
        self.solve_errors += other.solve_errors;
        self.protocol_errors += other.protocol_errors;
        self.cached += other.cached;
        for (mine, theirs) in self.coords.iter_mut().zip(other.coords) {
            mine.solved += theirs.solved;
            mine.rounds += theirs.rounds;
            mine.messages += theirs.messages;
            mine.blocking_pairs += theirs.blocking_pairs;
            mine.num_edges += theirs.num_edges;
            mine.matched += theirs.matched;
        }
    }
}

/// Replays `mix` against the server at `addr`.
///
/// # Errors
///
/// Returns connection errors; per-frame transport failures are counted
/// as `protocol_errors` instead.
pub fn run_mix(addr: &str, mix: &MixConfig) -> std::io::Result<LoadReport> {
    let num_coords = mix.coordinates().len();
    let sockets_total = if mix.connections == 0 {
        mix.concurrency.max(1)
    } else {
        mix.connections.max(1)
    };
    let threads_wanted = mix.concurrency.max(1).min(sockets_total);
    // Record the server's shard count up front — the report annotates
    // its sweep cells with it, making shard sweeps self-describing.
    let shards = match control(addr, asm_service::Op::Health)? {
        Reply::Health(health) => health.shards,
        _ => 0,
    };
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut threads = Vec::new();
    for t in 0..threads_wanted {
        // Thread t owns sockets t, t + threads, t + 2·threads, …
        let mut streams = Vec::new();
        let mut s = t;
        while s < sockets_total {
            let stream = TcpStream::connect(addr)?;
            // Without TCP_NODELAY each one-line exchange stalls on Nagle +
            // delayed-ACK (~40 ms), throttling the whole closed loop.
            stream.set_nodelay(true)?;
            streams.push((s, stream));
            s += threads_wanted;
        }
        let mix = mix.clone();
        let next = Arc::clone(&next);
        threads.push(std::thread::spawn(move || {
            if mix.open_rate_rps > 0.0 {
                run_open(streams, &mix, &next, sockets_total, num_coords)
            } else {
                run_closed(streams, &mix, &next, num_coords)
            }
        }));
    }
    let mut tally = Tally::new(num_coords);
    for thread in threads {
        tally.merge(thread.join().expect("loadgen connection thread panicked"));
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(LoadReport {
        schema: LOADGEN_SCHEMA,
        mix: mix.clone(),
        sent: mix.requests,
        succeeded: tally.succeeded,
        rejected: tally.rejected,
        deadline_exceeded: tally.deadline_exceeded,
        solve_errors: tally.solve_errors,
        protocol_errors: tally.protocol_errors,
        shards,
        coords: tally.coords,
        wall: WallStats {
            total_ms,
            throughput_rps: if total_ms > 0.0 {
                mix.requests as f64 / total_ms * 1e3
            } else {
                0.0
            },
            cached_responses: tally.cached,
        },
    })
}

/// Closed loop over a thread's fan-out share: each round sends one
/// frame on every owned socket, then collects the replies — one frame
/// in flight per *socket*, so `--connections 512` keeps 512 requests
/// outstanding from far fewer threads. With one socket per thread this
/// degenerates to the classic send-then-wait loop.
fn run_closed(
    streams: Vec<(u64, TcpStream)>,
    mix: &MixConfig,
    next: &AtomicUsize,
    num_coords: usize,
) -> Tally {
    let mut tally = Tally::new(num_coords);
    let mut conns = Vec::new();
    for (_, stream) in streams {
        match stream.try_clone() {
            Ok(writer) => conns.push((writer, BufReader::new(stream))),
            Err(_) => tally.protocol_errors += 1,
        }
    }
    let stride = mix.stride();
    loop {
        let mut sent: Vec<(usize, u64, u64)> = Vec::new();
        for (slot, (writer, _)) in conns.iter_mut().enumerate() {
            let i = next.fetch_add(stride as usize, Ordering::SeqCst) as u64;
            if i >= mix.requests {
                break;
            }
            let count = stride.min(mix.requests - i);
            let line = if stride == 1 {
                asm_service::protocol::render(&mix.request(i))
            } else {
                asm_service::protocol::render(&mix.batch_frame(i, count))
            };
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                tally.protocol_errors += 1;
                continue;
            }
            sent.push((slot, i, count));
        }
        if sent.is_empty() {
            return tally;
        }
        for (slot, i, count) in sent {
            let (_, reader) = &mut conns[slot];
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(0) | Err(_) => tally.protocol_errors += 1,
                Ok(_) if stride == 1 => tally.classify(mix, i, reply.trim_end()),
                Ok(_) => tally.classify_batch(mix, i, count, reply.trim_end()),
            }
        }
    }
}

/// One open-loop socket's state within a thread's fan-out share.
struct OpenConn {
    /// Phase offset: global socket index staggers the first send.
    phase: Duration,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// (index, count) per frame sent, for the in-order reply collection.
    sent: Vec<(u64, u64)>,
    /// Frames sent on this socket so far (its pacing clock).
    k: u32,
}

/// Open loop: pace sends at the aggregate target rate, pipelining on
/// each connection; read replies in order afterwards (the line protocol
/// answers in request order per connection). A thread round-robins its
/// fan-out share — sockets' stagger phases are in index order, so
/// round-robin order is chronological order.
fn run_open(
    streams: Vec<(u64, TcpStream)>,
    mix: &MixConfig,
    next: &AtomicUsize,
    sockets_total: u64,
    num_coords: usize,
) -> Tally {
    let mut tally = Tally::new(num_coords);
    let mut conns = Vec::new();
    for (s, stream) in streams {
        match stream.try_clone() {
            Ok(writer) => conns.push(OpenConn {
                phase: Duration::from_secs_f64(s as f64 / mix.open_rate_rps),
                writer,
                reader: BufReader::new(stream),
                sent: Vec::new(),
                k: 0,
            }),
            Err(_) => tally.protocol_errors += 1,
        }
    }
    let stride = mix.stride();
    // Each socket carries 1/sockets_total of the aggregate *request*
    // rate; a batch frame covers `stride` requests, so frames pace
    // `stride`× slower.
    let interval =
        Duration::from_secs_f64(stride as f64 * sockets_total as f64 / mix.open_rate_rps);
    let start = Instant::now();
    'pace: loop {
        for conn in &mut conns {
            let i = next.fetch_add(stride as usize, Ordering::SeqCst) as u64;
            if i >= mix.requests {
                break 'pace;
            }
            let count = stride.min(mix.requests - i);
            let at = start + conn.phase + interval * conn.k;
            conn.k += 1;
            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let line = if stride == 1 {
                asm_service::protocol::render(&mix.request(i))
            } else {
                asm_service::protocol::render(&mix.batch_frame(i, count))
            };
            if conn
                .writer
                .write_all(line.as_bytes())
                .and_then(|()| conn.writer.write_all(b"\n"))
                .and_then(|()| conn.writer.flush())
                .is_err()
            {
                tally.protocol_errors += 1;
                continue;
            }
            conn.sent.push((i, count));
        }
        if conns.is_empty() {
            break;
        }
    }
    for conn in &mut conns {
        for &(i, count) in &conn.sent {
            let mut reply = String::new();
            match conn.reader.read_line(&mut reply) {
                Ok(0) | Err(_) => tally.protocol_errors += 1,
                Ok(_) if stride == 1 => tally.classify(mix, i, reply.trim_end()),
                Ok(_) => tally.classify_batch(mix, i, count, reply.trim_end()),
            }
        }
    }
    tally
}

fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> std::io::Result<String> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-exchange",
        ));
    }
    Ok(reply.trim_end().to_string())
}

/// Sends one control frame (`health`, `metrics`, `shutdown`) and returns
/// the parsed reply.
///
/// # Errors
///
/// Returns I/O errors, or `InvalidData` if the reply does not parse.
pub fn control(addr: &str, op: asm_service::Op) -> std::io::Result<Reply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let line = asm_service::protocol::render(&Request { id: Some(0), op });
    let reply = exchange(&mut writer, &mut reader, &line)?;
    let response: Response = serde_json::from_str(&reply).map_err(|err| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable control reply: {err}"),
        )
    })?;
    Ok(response.reply)
}

/// Reconciles a [`LoadReport`] against the server's own `metrics`
/// counters. Returns the list of mismatches (empty ⇔ the books balance).
///
/// Assumes the load generator was the server's only client, and that the
/// snapshot was taken after the run (so `extra_control_frames` counts
/// the generator's own health/metrics frames, including the one that
/// fetched `snapshot`).
pub fn verify_metrics(report: &LoadReport, snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut check = |name: &str, ours: u64, theirs: u64| {
        if ours != theirs {
            mismatches.push(format!(
                "{name}: loadgen counted {ours}, server metrics say {theirs}"
            ));
        }
    };
    check("solved", report.succeeded, snapshot.solved);
    check("overloaded", report.rejected, snapshot.overloaded);
    check(
        "deadline_exceeded",
        report.deadline_exceeded,
        snapshot.deadline_exceeded,
    );
    check("errors", report.solve_errors, snapshot.errors);
    check("rounds_total", report.rounds_total(), snapshot.rounds_total);
    check(
        "messages_total",
        report.messages_total(),
        snapshot.messages_total,
    );
    check(
        "blocking_pairs_total",
        report.blocking_pairs_total(),
        snapshot.blocking_pairs_total,
    );
    check(
        "matched_total",
        report.matched_total(),
        snapshot.matched_total,
    );
    check(
        "cache lookups",
        report.succeeded,
        snapshot.cache_hits + snapshot.cache_misses,
    );
    // On a sharded server the per-shard books must sum exactly to the
    // aggregates (queue_peak aggregates by max, not sum).
    if !snapshot.shards.is_empty() {
        let sum =
            |f: fn(&asm_service::ShardSnapshot) -> u64| snapshot.shards.iter().map(f).sum::<u64>();
        check("Σ shard solved", sum(|s| s.solved), snapshot.solved);
        check("Σ shard analyzed", sum(|s| s.analyzed), snapshot.analyzed);
        check(
            "Σ shard overloaded",
            sum(|s| s.overloaded),
            snapshot.overloaded,
        );
        check(
            "Σ shard deadline_exceeded",
            sum(|s| s.deadline_exceeded),
            snapshot.deadline_exceeded,
        );
        check(
            "Σ shard cache_hits",
            sum(|s| s.cache_hits),
            snapshot.cache_hits,
        );
        check(
            "Σ shard cache_misses",
            sum(|s| s.cache_misses),
            snapshot.cache_misses,
        );
        check(
            "Σ shard cache_entries",
            sum(|s| s.cache_entries),
            snapshot.cache_entries,
        );
        check(
            "Σ shard rounds_total",
            sum(|s| s.rounds_total),
            snapshot.rounds_total,
        );
        check(
            "Σ shard messages_total",
            sum(|s| s.messages_total),
            snapshot.messages_total,
        );
        check(
            "Σ shard blocking_pairs_total",
            sum(|s| s.blocking_pairs_total),
            snapshot.blocking_pairs_total,
        );
        check(
            "Σ shard matched_total",
            sum(|s| s.matched_total),
            snapshot.matched_total,
        );
        check(
            "max shard queue_peak",
            snapshot
                .shards
                .iter()
                .map(|s| s.queue_peak)
                .max()
                .unwrap_or(0),
            snapshot.queue_peak,
        );
    }
    mismatches
}

/// Audits a *router-produced* snapshot against itself: the per-backend
/// array plus the router's own folds must reproduce the merged
/// aggregates exactly (counters sum, `queue_peak` maxes, sheds fold into
/// `overloaded`, router errors into `errors`).
///
/// Unlike [`verify_metrics`] this needs no [`LoadReport`], so it still
/// holds after a backend was killed mid-run — the dead backend's books
/// are lost (its array slice reads zero), which breaks loadgen-vs-server
/// reconciliation but not the router's internal arithmetic. Returns the
/// mismatches (empty ⇔ the books balance); an empty `backends` array —
/// a snapshot not produced by a router — passes vacuously.
pub fn verify_router_books(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut mismatches = Vec::new();
    if snapshot.backends.is_empty() {
        return mismatches;
    }
    let Some(router) = &snapshot.router else {
        return vec!["router block missing from a snapshot with a backends array".to_string()];
    };
    let mut check = |name: &str, parts: u64, merged: u64| {
        if parts != merged {
            mismatches.push(format!(
                "{name}: backend slices sum to {parts}, merged aggregate says {merged}"
            ));
        }
    };
    let sum = |f: fn(&asm_service::BackendSnapshot) -> u64| -> u64 {
        snapshot.backends.iter().map(f).sum()
    };
    check("Σ backend solved", sum(|b| b.solved), snapshot.solved);
    check("Σ backend analyzed", sum(|b| b.analyzed), snapshot.analyzed);
    check(
        "Σ backend overloaded + router sheds",
        sum(|b| b.overloaded) + router.sheds,
        snapshot.overloaded,
    );
    check(
        "Σ backend errors + router errors",
        sum(|b| b.errors) + router.errors,
        snapshot.errors,
    );
    check(
        "Σ backend deadline_exceeded",
        sum(|b| b.deadline_exceeded),
        snapshot.deadline_exceeded,
    );
    check(
        "Σ backend cache_hits",
        sum(|b| b.cache_hits),
        snapshot.cache_hits,
    );
    check(
        "Σ backend cache_misses",
        sum(|b| b.cache_misses),
        snapshot.cache_misses,
    );
    check(
        "Σ backend cache_entries",
        sum(|b| b.cache_entries),
        snapshot.cache_entries,
    );
    check(
        "Σ backend queue_depth",
        sum(|b| b.queue_depth),
        snapshot.queue_depth,
    );
    check(
        "Σ backend rounds_total",
        sum(|b| b.rounds_total),
        snapshot.rounds_total,
    );
    check(
        "Σ backend messages_total",
        sum(|b| b.messages_total),
        snapshot.messages_total,
    );
    check(
        "Σ backend blocking_pairs_total",
        sum(|b| b.blocking_pairs_total),
        snapshot.blocking_pairs_total,
    );
    check(
        "Σ backend matched_total",
        sum(|b| b.matched_total),
        snapshot.matched_total,
    );
    check(
        "max backend queue_peak",
        snapshot
            .backends
            .iter()
            .map(|b| b.queue_peak)
            .max()
            .unwrap_or(0),
        snapshot.queue_peak,
    );
    if router.failovers > router.routed {
        mismatches.push(format!(
            "failovers ({}) exceed routed exchanges ({})",
            router.failovers, router.routed
        ));
    }
    for (i, backend) in snapshot.backends.iter().enumerate() {
        if backend.backend != i as u64 {
            mismatches.push(format!(
                "backends[{i}] reports slice index {}",
                backend.backend
            ));
        }
        if !matches!(backend.state.as_str(), "up" | "suspect" | "down") {
            mismatches.push(format!(
                "backends[{i}] reports unknown state `{}`",
                backend.state
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_pure_functions_of_the_index() {
        let mix = MixConfig::default();
        for i in 0..20 {
            assert_eq!(mix.request(i), mix.request(i), "index {i}");
        }
        assert_ne!(mix.request(0), mix.request(1));
    }

    #[test]
    fn distinct_instances_cycles_identities() {
        let mix = MixConfig {
            distinct_instances: 4,
            ..MixConfig::default()
        };
        let a = mix.request(1);
        let b = mix.request(5);
        // Same identity (1 mod 4): same instance/algorithm/seed, new id.
        let (asm_service::Op::Solve(a_body), asm_service::Op::Solve(b_body)) = (a.op, b.op) else {
            panic!("loadgen only builds solves");
        };
        assert_eq!(a_body, b_body);
    }

    #[test]
    fn coordinates_align_with_coordinate_of() {
        let mix = MixConfig::default();
        let coords = mix.coordinates();
        assert_eq!(coords.len(), 4);
        for i in 0..50 {
            assert!(mix.coordinate_of(i) < coords.len());
        }
    }

    #[test]
    fn report_round_trips_and_normalizes() {
        let mix = MixConfig::default();
        let report = LoadReport {
            schema: LOADGEN_SCHEMA,
            coords: vec![CoordTotals::default(); mix.coordinates().len()],
            mix,
            sent: 10,
            succeeded: 9,
            rejected: 1,
            deadline_exceeded: 0,
            solve_errors: 0,
            protocol_errors: 0,
            shards: 1,
            wall: WallStats {
                total_ms: 12.5,
                throughput_rps: 800.0,
                cached_responses: 3,
            },
        };
        let back: LoadReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.normalized().wall, WallStats::default());
        assert_eq!(back.normalized(), report.normalized());
    }

    #[test]
    fn sweep_conversion_emits_one_cell_per_coordinate() {
        let mix = MixConfig::default();
        let mut coords = vec![CoordTotals::default(); mix.coordinates().len()];
        coords[0] = CoordTotals {
            solved: 2,
            rounds: 10,
            messages: 40,
            blocking_pairs: 3,
            num_edges: 30,
            matched: 20,
        };
        let report = LoadReport {
            schema: LOADGEN_SCHEMA,
            coords,
            mix: mix.clone(),
            sent: 2,
            succeeded: 2,
            rejected: 0,
            deadline_exceeded: 0,
            solve_errors: 0,
            protocol_errors: 0,
            shards: 4,
            wall: WallStats::default(),
        };
        let sweep = report.to_sweep();
        assert_eq!(sweep.cells.len(), mix.coordinates().len());
        let cell = sweep
            .cells
            .iter()
            .find(|c| c.rounds == 10)
            .expect("populated cell present");
        assert_eq!(cell.experiment, "loadgen");
        assert_eq!(cell.messages, 40);
        assert!((cell.blocking_fraction - 0.1).abs() < 1e-12);
        assert!(
            sweep.cells.iter().all(|c| c.shards == 4),
            "every cell carries the server shard count"
        );
    }

    #[test]
    fn batch_frames_are_pure_and_cover_their_indices() {
        let mix = MixConfig {
            batch: 4,
            ..MixConfig::default()
        };
        assert_eq!(mix.stride(), 4);
        let frame = mix.batch_frame(8, 4);
        assert_eq!(frame, mix.batch_frame(8, 4));
        assert_eq!(frame.id, Some(8));
        let asm_service::Op::SolveBatch(body) = frame.op else {
            panic!("expected a solve_batch frame");
        };
        assert_eq!(body.items.len(), 4);
        // Item j is exactly the body of single request 8 + j.
        for (j, item) in body.items.iter().enumerate() {
            let asm_service::Op::Solve(single) = mix.request(8 + j as u64).op else {
                panic!("request always builds a solve");
            };
            assert_eq!(item, &single, "item {j}");
        }
    }

    /// A balanced router snapshot: two backends plus router folds that
    /// reproduce the merged aggregates exactly.
    fn router_snapshot_json() -> String {
        let backend = |i: u64, solved: u64, overloaded: u64, errors: u64, hits: u64, peak: u64| {
            format!(
                "{{\"backend\":{i},\"state\":\"up\",\"received\":5,\"solved\":{solved},\
                 \"analyzed\":0,\"overloaded\":{overloaded},\"deadline_exceeded\":0,\
                 \"errors\":{errors},\"cache_hits\":{hits},\"cache_misses\":2,\
                 \"cache_entries\":2,\"queue_depth\":0,\"queue_peak\":{peak},\
                 \"rounds_total\":{},\"messages_total\":{},\"blocking_pairs_total\":0,\
                 \"matched_total\":{}}}",
                solved * 10,
                solved * 20,
                solved * 7,
            )
        };
        format!(
            "{{\"schema\":1,\"received\":10,\"malformed\":1,\"solved\":5,\"analyzed\":0,\
             \"health\":0,\"metrics\":2,\"shutdown\":0,\"overloaded\":3,\
             \"deadline_exceeded\":0,\"errors\":4,\"cache_hits\":1,\"cache_misses\":4,\
             \"cache_hit_rate\":0.2,\"cache_entries\":4,\"queue_depth\":0,\"queue_peak\":2,\
             \"rounds_total\":50,\"messages_total\":100,\"blocking_pairs_total\":0,\
             \"matched_total\":35,\"latency_p50_us\":2,\"latency_p95_us\":2,\
             \"latency_p99_us\":2,\"backends\":[{},{}],\
             \"router\":{{\"received\":9,\"malformed\":1,\"routed\":8,\"retried\":1,\
             \"failovers\":1,\"sheds\":2,\"errors\":3,\"probes\":4,\"probe_failures\":1,\
             \"to_suspect\":1,\"to_down\":0,\"recoveries\":1}}}}",
            backend(0, 3, 1, 0, 1, 2),
            backend(1, 2, 0, 1, 0, 1),
        )
    }

    #[test]
    fn router_books_balance_and_mismatches_are_caught() {
        let snapshot: MetricsSnapshot = serde_json::from_str(&router_snapshot_json()).unwrap();
        assert_eq!(verify_router_books(&snapshot), Vec::<String>::new());

        // Losing a backend's solves breaks the sum check.
        let mut broken = snapshot.clone();
        broken.backends[1].solved = 0;
        assert!(verify_router_books(&broken)
            .iter()
            .any(|m| m.contains("Σ backend solved")));

        // Dropping the router block is itself a mismatch…
        let mut headless = snapshot.clone();
        headless.router = None;
        assert!(verify_router_books(&headless)[0].contains("router block missing"));

        // …but a plain (non-router) snapshot passes vacuously.
        let mut plain = snapshot;
        plain.backends.clear();
        plain.router = None;
        assert_eq!(verify_router_books(&plain), Vec::<String>::new());
    }

    #[test]
    fn classify_batch_tallies_items_like_singles() {
        let mix = MixConfig::default();
        let frame = mix.batch_frame(0, 3);
        let asm_service::Op::SolveBatch(body) = frame.op else {
            panic!("expected a solve_batch frame");
        };
        // Synthesize a reply: one solved, one overloaded, one error.
        let solved = asm_service::SolveResult {
            matching: asm_matching::Matching::new(4),
            matched: 2,
            num_edges: 6,
            blocking_pairs: 1,
            rounds: 5,
            messages: 9,
            cached: false,
        };
        let reply = asm_service::protocol::render(&Response {
            id: Some(0),
            reply: Reply::SolvedBatch(asm_service::BatchResult {
                items: vec![
                    asm_service::BatchItemResult::Solved(solved),
                    asm_service::BatchItemResult::Overloaded(asm_service::OverloadInfo::new(1, 1)),
                    asm_service::BatchItemResult::Error(asm_service::ErrorInfo::new(
                        asm_service::kind::INVALID,
                        "nope",
                    )),
                ],
            }),
        });
        let mut tally = Tally::new(mix.coordinates().len());
        tally.classify_batch(&mix, 0, body.items.len() as u64, &reply);
        assert_eq!(tally.succeeded, 1);
        assert_eq!(tally.rejected, 1);
        assert_eq!(tally.solve_errors, 1);
        assert_eq!(tally.protocol_errors, 0);
        // Wrong id → protocol error, nothing else moves.
        let mut wrong = Tally::new(mix.coordinates().len());
        wrong.classify_batch(&mix, 7, 3, &reply);
        assert_eq!(wrong.protocol_errors, 1);
        assert_eq!(wrong.succeeded, 0);
    }
}
