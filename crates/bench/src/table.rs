//! Fixed-width table rendering for experiment output.

use std::fmt;

/// A simple experiment results table: headers plus string rows, rendered
/// with aligned fixed-width columns (and convertible to Markdown for
/// EXPERIMENTS.md).
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header count.
    ///
    /// # Panics
    ///
    /// Panics on a cell-count mismatch (a bug in the experiment code).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as CSV (RFC-4180-ish; cells containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out += &self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out += &row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",");
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out += &format!("| {} |\n", self.headers.join(" | "));
        out += &format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        );
        for row in &self.rows {
            out += &format!("| {} |\n", row.join(" | "));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["1".into(), "long-value".into()]);
        t.row(vec!["1000".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("md", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new("bad", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f2(3.0), "3.00");
    }
}
