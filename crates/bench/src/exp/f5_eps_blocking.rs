//! **F5 — Remark 2.** After removing the bad men, ASM's output is
//! ε-blocking-stable in the Kipnis–Patt-Shamir sense (Definition 2): the
//! `(2/k)`-blocking pairs disappear with the bad men.

use super::{family, ExpCtx, FAMILY_NAMES};
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_matching::{count_eps_blocking_pairs, eps_blocking_pairs_excluding};
use asm_runtime::SweepCell;

const ID: &str = "f5_eps_blocking";

/// Runs the audit and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "F5: eps-blocking pairs before/after removing bad men (Remark 2)",
        &[
            "family",
            "bad men",
            "bad frac",
            "(2/k)-blocking before",
            "after removal",
            "eps-blocking-stable",
        ],
    );
    let n = if ctx.quick { 32 } else { 96 };
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let fams: Vec<usize> = (0..FAMILY_NAMES.len()).collect();
    let results = ctx.exec.map(&fams, |_, &fam| {
        let seed = ctx.seed(ID, FAMILY_NAMES[fam], &[n as u64]);
        let (name, inst) = family(fam, n, seed);
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let before = count_eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
        let after =
            eps_blocking_pairs_excluding(&inst, &report.matching, 2.0 / k, &report.bad_men).len();
        let mut cell = SweepCell::new(ID, name, n, 1.0, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = report.stability(&inst).blocking_fraction();
        let row = vec![
            name.to_string(),
            report.bad_men.len().to_string(),
            f4(report.bad_fraction(inst.ids().num_men())),
            before.to_string(),
            after.to_string(),
            (after == 0).to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn removal_always_clears_eps_blocking_pairs() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert!(
            !tables[0].to_markdown().contains("false"),
            "a family kept eps-blocking pairs after removal:\n{}",
            tables[0]
        );
    }
}
