//! **F5 — Remark 2.** After removing the bad men, ASM's output is
//! ε-blocking-stable in the Kipnis–Patt-Shamir sense (Definition 2): the
//! `(2/k)`-blocking pairs disappear with the bad men.

use super::families;
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_matching::{count_eps_blocking_pairs, eps_blocking_pairs_excluding};

/// Runs the audit and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "F5: eps-blocking pairs before/after removing bad men (Remark 2)",
        &[
            "family",
            "bad men",
            "bad frac",
            "(2/k)-blocking before",
            "after removal",
            "eps-blocking-stable",
        ],
    );
    let n = if quick { 32 } else { 96 };
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    for (name, inst) in families(n, 0x55) {
        let report = asm(&inst, &config).expect("valid config");
        let before = count_eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
        let after =
            eps_blocking_pairs_excluding(&inst, &report.matching, 2.0 / k, &report.bad_men).len();
        t.row(vec![
            name.to_string(),
            report.bad_men.len().to_string(),
            f4(report.bad_fraction(inst.ids().num_men())),
            before.to_string(),
            after.to_string(),
            (after == 0).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn removal_always_clears_eps_blocking_pairs() {
        let tables = super::run(true);
        assert!(
            !tables[0].to_markdown().contains("false"),
            "a family kept eps-blocking pairs after removal:\n{}",
            tables[0]
        );
    }
}
