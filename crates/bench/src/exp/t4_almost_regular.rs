//! **T4 — Theorem 6.** `AlmostRegularASM` runs in rounds independent of
//! `n` for fixed α, ε, δ (complete preferences are 1-almost-regular),
//! and its schedule grows with α.

use super::{n_sweep, ExpCtx};
use crate::{f4, Table};
use asm_core::{almost_regular_asm, AlmostRegularParams};
use asm_instance::generators;
use asm_runtime::SweepCell;

const ID: &str = "t4_almost_regular";

/// Runs the sweep and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let eps = 1.0;
    let delta = 0.1;

    let mut by_n = Table::new(
        "T4a: AlmostRegularASM rounds vs n on complete preferences (Theorem 6)",
        &[
            "n",
            "nominal rounds",
            "effective rounds",
            "blocking frac",
            "removed men",
            "ok",
        ],
    );
    let sizes = n_sweep(ctx.quick);
    let results = ctx.exec.map(&sizes, |_, &n| {
        let seed = ctx.seed(ID, "complete", &[n as u64]);
        let inst = generators::complete(n, seed);
        let algo_seed = ctx.seed(ID, "complete-run", &[n as u64]);
        let (report, wall_ms) = ExpCtx::time(|| {
            almost_regular_asm(
                &inst,
                &AlmostRegularParams::new(eps, delta).with_seed(algo_seed),
            )
            .expect("valid params")
        });
        let st = report.stability(&inst);
        let mut cell = SweepCell::new(ID, "complete", n, eps, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            n.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.removed_men.len().to_string(),
            st.is_one_minus_eps_stable(eps).to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        by_n.row(row);
        cells.push(cell);
    }

    let mut by_alpha = Table::new(
        "T4b: AlmostRegularASM schedule vs alpha at fixed n",
        &[
            "alpha",
            "scheduled QMs",
            "nominal rounds",
            "effective rounds",
            "blocking frac",
        ],
    );
    let n = if ctx.quick { 48 } else { 128 };
    let alphas = [1.0, 2.0, 4.0];
    let alpha_results = ctx.exec.map(&alphas, |ai, &alpha| {
        let d_min = 4;
        let seed = ctx.seed(ID, "almost-reg", &[n as u64, ai as u64]);
        let inst = generators::almost_regular(n, d_min, alpha, seed);
        let algo_seed = ctx.seed(ID, "almost-reg-run", &[n as u64, ai as u64]);
        let (report, wall_ms) = ExpCtx::time(|| {
            almost_regular_asm(
                &inst,
                &AlmostRegularParams::new(eps, delta).with_seed(algo_seed),
            )
            .expect("valid params")
        });
        let st = report.stability(&inst);
        let mut cell = SweepCell::new(ID, "almost-reg", n, alpha, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            format!("{alpha}"),
            report.scheduled_quantile_matches.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
        ];
        (row, cell)
    });
    for (row, cell) in alpha_results {
        by_alpha.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![by_n, by_alpha]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn nominal_rounds_constant_in_n() {
        let tables = super::run(&ExpCtx::quick_serial());
        let rows: Vec<Vec<String>> = tables[0]
            .to_markdown()
            .lines()
            .skip(4)
            .map(|l| l.split('|').map(|c| c.trim().to_string()).collect())
            .collect();
        let nominals: Vec<&String> = rows.iter().filter(|r| r.len() > 2).map(|r| &r[2]).collect();
        assert!(nominals.windows(2).all(|w| w[0] == w[1]), "{nominals:?}");
    }
}
