//! **T4 — Theorem 6.** `AlmostRegularASM` runs in rounds independent of
//! `n` for fixed α, ε, δ (complete preferences are 1-almost-regular),
//! and its schedule grows with α.

use super::n_sweep;
use crate::{f4, Table};
use asm_core::{almost_regular_asm, AlmostRegularParams};
use asm_instance::generators;

/// Runs the sweep and returns the result tables.
pub fn run(quick: bool) -> Vec<Table> {
    let eps = 1.0;
    let delta = 0.1;

    let mut by_n = Table::new(
        "T4a: AlmostRegularASM rounds vs n on complete preferences (Theorem 6)",
        &[
            "n",
            "nominal rounds",
            "effective rounds",
            "blocking frac",
            "removed men",
            "ok",
        ],
    );
    for n in n_sweep(quick) {
        let inst = generators::complete(n, 0xC1);
        let report = almost_regular_asm(&inst, &AlmostRegularParams::new(eps, delta).with_seed(3))
            .expect("valid params");
        let st = report.stability(&inst);
        by_n.row(vec![
            n.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.removed_men.len().to_string(),
            st.is_one_minus_eps_stable(eps).to_string(),
        ]);
    }

    let mut by_alpha = Table::new(
        "T4b: AlmostRegularASM schedule vs alpha at fixed n",
        &[
            "alpha",
            "scheduled QMs",
            "nominal rounds",
            "effective rounds",
            "blocking frac",
        ],
    );
    let n = if quick { 48 } else { 128 };
    for alpha in [1.0, 2.0, 4.0] {
        let d_min = 4;
        let inst = generators::almost_regular(n, d_min, alpha, 0xC2);
        let report = almost_regular_asm(&inst, &AlmostRegularParams::new(eps, delta).with_seed(5))
            .expect("valid params");
        let st = report.stability(&inst);
        by_alpha.row(vec![
            format!("{alpha}"),
            report.scheduled_quantile_matches.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
        ]);
    }
    vec![by_n, by_alpha]
}

#[cfg(test)]
mod tests {
    #[test]
    fn nominal_rounds_constant_in_n() {
        let tables = super::run(true);
        let rows: Vec<Vec<String>> = tables[0]
            .to_markdown()
            .lines()
            .skip(4)
            .map(|l| l.split('|').map(|c| c.trim().to_string()).collect())
            .collect();
        let nominals: Vec<&String> = rows.iter().filter(|r| r.len() > 2).map(|r| &r[2]).collect();
        assert!(nominals.windows(2).all(|w| w[0] == w[1]), "{nominals:?}");
    }
}
