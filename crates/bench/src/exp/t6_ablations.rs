//! **T6 — Ablations.** How sensitive is ASM to its knobs? Sweeps the
//! quantile count `k`, the inner-loop multiplier, and the matcher backend
//! on a fixed instance, reporting rounds and achieved stability. The
//! paper's constants are worst-case; these tables show the observed
//! slack.

use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;

/// Runs the sweeps and returns the result tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 32 } else { 128 };
    let eps = 0.5;
    let inst = generators::erdos_renyi(n, n, 0.3, 0xE4);

    let mut by_k = Table::new(
        "T6a: quantile count k (paper default k = ceil(8/eps))",
        &[
            "k",
            "nominal rounds",
            "effective",
            "blocking frac",
            "bad men",
            "meets eps",
        ],
    );
    let default_k = AsmConfig::new(eps).quantile_count();
    for k in [2, 4, 8, default_k, 2 * default_k] {
        let config = AsmConfig {
            quantiles: Some(k),
            ..AsmConfig::new(eps)
        };
        let report = asm(&inst, &config).expect("valid config");
        let st = report.stability(&inst);
        by_k.row(vec![
            k.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.bad_men.len().to_string(),
            st.is_one_minus_eps_stable(eps).to_string(),
        ]);
    }

    let mut by_inner = Table::new(
        "T6b: inner-loop multiplier (paper default 1.0 => 2k/delta iterations)",
        &[
            "multiplier",
            "inner iters",
            "effective rounds",
            "blocking frac",
            "bad men",
        ],
    );
    for mult in [0.05, 0.25, 1.0] {
        let config = AsmConfig {
            inner_multiplier: mult,
            ..AsmConfig::new(eps)
        };
        let report = asm(&inst, &config).expect("valid config");
        let st = report.stability(&inst);
        by_inner.row(vec![
            format!("{mult}"),
            config.inner_iterations().to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.bad_men.len().to_string(),
        ]);
    }

    let mut by_backend = Table::new(
        "T6c: maximal-matching backend",
        &[
            "backend",
            "nominal rounds",
            "effective rounds",
            "mm rounds",
            "blocking frac",
        ],
    );
    for (name, backend) in [
        ("hkp-oracle", MatcherBackend::HkpOracle),
        ("det-greedy", MatcherBackend::DetGreedy),
        ("bipartite-proposal", MatcherBackend::BipartiteProposal),
        ("panconesi-rizzi", MatcherBackend::PanconesiRizzi),
        (
            "israeli-itai(32)",
            MatcherBackend::IsraeliItai { max_iterations: 32 },
        ),
    ] {
        let config = AsmConfig::new(eps).with_backend(backend);
        let report = asm(&inst, &config).expect("valid config");
        let st = report.stability(&inst);
        by_backend.row(vec![
            name.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            report.mm_rounds.to_string(),
            f4(st.blocking_fraction()),
        ]);
    }
    vec![by_k, by_inner, by_backend]
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_three_tables() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(!t.is_empty());
        }
    }
}
