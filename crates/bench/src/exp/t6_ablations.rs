//! **T6 — Ablations.** How sensitive is ASM to its knobs? Sweeps the
//! quantile count `k`, the inner-loop multiplier, and the matcher backend
//! on a fixed instance, reporting rounds and achieved stability. The
//! paper's constants are worst-case; these tables show the observed
//! slack.

use super::ExpCtx;
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "t6_ablations";

/// Runs the sweeps and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let n = if ctx.quick { 32 } else { 128 };
    let eps = 0.5;
    let seed = ctx.seed(ID, "erdos-renyi", &[n as u64]);
    let inst = generators::erdos_renyi(n, n, 0.3, seed);
    let mut cells = Vec::new();

    let mut by_k = Table::new(
        "T6a: quantile count k (paper default k = ceil(8/eps))",
        &[
            "k",
            "nominal rounds",
            "effective",
            "blocking frac",
            "bad men",
            "meets eps",
        ],
    );
    let default_k = AsmConfig::new(eps).quantile_count();
    let ks = [2, 4, 8, default_k, 2 * default_k];
    let k_results = ctx.exec.map(&ks, |_, &k| {
        let config = AsmConfig {
            quantiles: Some(k),
            ..AsmConfig::new(eps)
        };
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let st = report.stability(&inst);
        let mut cell = SweepCell::new(ID, "quantiles", k, eps, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            k.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.bad_men.len().to_string(),
            st.is_one_minus_eps_stable(eps).to_string(),
        ];
        (row, cell)
    });
    for (row, cell) in k_results {
        by_k.row(row);
        cells.push(cell);
    }

    let mut by_inner = Table::new(
        "T6b: inner-loop multiplier (paper default 1.0 => 2k/delta iterations)",
        &[
            "multiplier",
            "inner iters",
            "effective rounds",
            "blocking frac",
            "bad men",
        ],
    );
    let mults = [0.05, 0.25, 1.0];
    let mult_results = ctx.exec.map(&mults, |mi, &mult| {
        let config = AsmConfig {
            inner_multiplier: mult,
            ..AsmConfig::new(eps)
        };
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let st = report.stability(&inst);
        let mut cell = SweepCell::new(ID, "inner-mult", mi, mult, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            format!("{mult}"),
            config.inner_iterations().to_string(),
            report.rounds.to_string(),
            f4(st.blocking_fraction()),
            report.bad_men.len().to_string(),
        ];
        (row, cell)
    });
    for (row, cell) in mult_results {
        by_inner.row(row);
        cells.push(cell);
    }

    let mut by_backend = Table::new(
        "T6c: maximal-matching backend",
        &[
            "backend",
            "nominal rounds",
            "effective rounds",
            "mm rounds",
            "blocking frac",
        ],
    );
    let backends = [
        ("hkp-oracle", MatcherBackend::HkpOracle),
        ("det-greedy", MatcherBackend::DetGreedy),
        ("bipartite-proposal", MatcherBackend::BipartiteProposal),
        ("panconesi-rizzi", MatcherBackend::PanconesiRizzi),
        (
            "israeli-itai(32)",
            MatcherBackend::IsraeliItai { max_iterations: 32 },
        ),
    ];
    let backend_results = ctx.exec.map(&backends, |bi, &(name, backend)| {
        let config = AsmConfig::new(eps).with_backend(backend);
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let st = report.stability(&inst);
        let mut cell = SweepCell::new(ID, "backend", bi, eps, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            name.to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
            report.mm_rounds.to_string(),
            f4(st.blocking_fraction()),
        ];
        (row, cell)
    });
    for (row, cell) in backend_results {
        by_backend.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![by_k, by_inner, by_backend]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn produces_three_tables() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(!t.is_empty());
        }
    }
}
