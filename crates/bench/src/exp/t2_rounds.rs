//! **T2 — Theorem 4.** `ASM`'s round complexity is `O(ε⁻³ log⁵ n)`:
//! the nominal schedule grows polylogarithmically (charged HKP oracle)
//! while distributed Gale–Shapley's measured rounds grow polynomially on
//! adversarial inputs. A second table sweeps ε to exhibit the `ε⁻³`
//! factor.

use super::n_sweep;
use crate::{f2, Table};
use asm_core::baselines::distributed_gs;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;

/// Runs the sweep and returns the result tables.
pub fn run(quick: bool) -> Vec<Table> {
    let mut by_n = Table::new(
        "T2a: rounds vs n (Theorem 4) - complete and chain instances",
        &[
            "family",
            "n",
            "ASM nominal (HKP)",
            "ASM effective (HKP)",
            "ASM effective (greedy)",
            "GS rounds",
            "log^5(n)*e^-3",
        ],
    );
    for n in n_sweep(quick) {
        for (family, inst) in [
            ("complete", generators::complete(n, 7)),
            ("chain", generators::adversarial_chain(n)),
        ] {
            let hkp = asm(&inst, &AsmConfig::new(1.0)).expect("valid config");
            let greedy = asm(
                &inst,
                &AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy),
            )
            .expect("valid config");
            let gs = distributed_gs(&inst);
            let log = (n as f64).log2();
            by_n.row(vec![
                family.to_string(),
                n.to_string(),
                hkp.nominal_rounds.to_string(),
                hkp.rounds.to_string(),
                greedy.rounds.to_string(),
                gs.rounds.to_string(),
                f2(log.powi(5)),
            ]);
        }
    }

    let mut by_eps = Table::new(
        "T2b: nominal rounds vs eps at fixed n (the eps^-3 factor)",
        &["eps", "k", "inner iters", "nominal rounds", "effective"],
    );
    let n = if quick { 32 } else { 128 };
    let inst = generators::complete(n, 7);
    for eps in [2.0, 1.0, 0.5, 0.25] {
        let config = AsmConfig::new(eps);
        let report = asm(&inst, &config).expect("valid config");
        by_eps.row(vec![
            format!("{eps}"),
            config.quantile_count().to_string(),
            config.inner_iterations().to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
        ]);
    }
    vec![by_n, by_eps]
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_both_tables() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
    }
}
