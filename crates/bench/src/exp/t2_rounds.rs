//! **T2 — Theorem 4.** `ASM`'s round complexity is `O(ε⁻³ log⁵ n)`:
//! the nominal schedule grows polylogarithmically (charged HKP oracle)
//! while distributed Gale–Shapley's measured rounds grow polynomially on
//! adversarial inputs. A second table sweeps ε to exhibit the `ε⁻³`
//! factor.

use super::{n_sweep, ExpCtx};
use crate::{f2, Table};
use asm_core::baselines::distributed_gs;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "t2_rounds";

/// Runs the sweep and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut by_n = Table::new(
        "T2a: rounds vs n (Theorem 4) - complete and chain instances",
        &[
            "family",
            "n",
            "ASM nominal (HKP)",
            "ASM effective (HKP)",
            "ASM effective (greedy)",
            "GS rounds",
            "log^5(n)*e^-3",
        ],
    );
    let mut grid = Vec::new();
    for n in n_sweep(ctx.quick) {
        for family in ["complete", "chain"] {
            grid.push((n, family));
        }
    }
    let results = ctx.exec.map(&grid, |_, &(n, family)| {
        let seed = ctx.seed(ID, family, &[n as u64]);
        let inst = match family {
            "complete" => generators::complete(n, seed),
            _ => generators::adversarial_chain(n),
        };
        let (row_data, wall_ms) = ExpCtx::time(|| {
            let hkp = asm(&inst, &AsmConfig::new(1.0)).expect("valid config");
            let greedy = asm(
                &inst,
                &AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy),
            )
            .expect("valid config");
            let gs = distributed_gs(&inst);
            (hkp, greedy, gs)
        });
        let (hkp, greedy, gs) = row_data;
        let log = (n as f64).log2();
        let mut cell = SweepCell::new(ID, family, n, 1.0, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = hkp.rounds;
        let row = vec![
            family.to_string(),
            n.to_string(),
            hkp.nominal_rounds.to_string(),
            hkp.rounds.to_string(),
            greedy.rounds.to_string(),
            gs.rounds.to_string(),
            f2(log.powi(5)),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        by_n.row(row);
        cells.push(cell);
    }

    let mut by_eps = Table::new(
        "T2b: nominal rounds vs eps at fixed n (the eps^-3 factor)",
        &["eps", "k", "inner iters", "nominal rounds", "effective"],
    );
    let n = if ctx.quick { 32 } else { 128 };
    let seed = ctx.seed(ID, "complete-eps", &[n as u64]);
    let inst = generators::complete(n, seed);
    let eps_grid = [2.0, 1.0, 0.5, 0.25];
    let eps_results = ctx.exec.map(&eps_grid, |_, &eps| {
        let config = AsmConfig::new(eps);
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let mut cell = SweepCell::new(ID, "complete-eps", n, eps, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        let row = vec![
            format!("{eps}"),
            config.quantile_count().to_string(),
            config.inner_iterations().to_string(),
            report.nominal_rounds.to_string(),
            report.rounds.to_string(),
        ];
        (row, cell)
    });
    for (row, cell) in eps_results {
        by_eps.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![by_n, by_eps]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn produces_both_tables() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
    }
}
