//! **T7 — extension.** What does the ε-relaxation cost in *welfare*?
//! Compares ASM's matchings against the two stable optima (man- and
//! woman-optimal Gale–Shapley) on rank-based welfare. Not a claim from
//! the paper — an adoption-relevant question its evaluation would
//! naturally include.

use super::{family, ExpCtx, FAMILY_NAMES};
use crate::{f2, f4, Table};
use asm_core::{asm, AsmConfig};
use asm_matching::{
    man_optimal_stable, rotation_chain, woman_optimal_stable, StabilityReport, WelfareReport,
};
use asm_runtime::SweepCell;

const ID: &str = "t7_welfare";

/// Runs the comparison and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T7: welfare of ASM vs the stable optima (extension)",
        &[
            "family",
            "algorithm",
            "egalitarian",
            "men mean",
            "women mean",
            "regret",
            "blocking frac",
        ],
    );
    let n = if ctx.quick { 24 } else { 96 };
    let fams: Vec<usize> = (0..FAMILY_NAMES.len()).collect();
    let results = ctx.exec.map(&fams, |_, &fam| {
        let seed = ctx.seed(ID, FAMILY_NAMES[fam], &[n as u64]);
        let (name, inst) = family(fam, n, seed);
        let mut rows = Vec::new();
        let mut push = |algo: &str, matching: &asm_matching::Matching| {
            let w = WelfareReport::measure(&inst, matching);
            let st = StabilityReport::analyze(&inst, matching);
            rows.push(vec![
                name.to_string(),
                algo.to_string(),
                w.egalitarian_cost.to_string(),
                f2(w.men_mean_rank),
                f2(w.women_mean_rank),
                w.regret.to_string(),
                f4(st.blocking_fraction()),
            ]);
        };
        let mut cell = SweepCell::new(ID, name, n, 0.5, seed);
        let ((), wall_ms) = ExpCtx::time(|| {
            let mo = man_optimal_stable(&inst);
            push("gs-man-opt", &mo.matching);
            let wo = woman_optimal_stable(&inst);
            push("gs-woman-opt", &wo.matching);
            // Best egalitarian cost over the rotation chain of the stable
            // lattice (a polynomial-size sample between the two optima).
            let (_, chain) = rotation_chain(&inst);
            let best = chain
                .iter()
                .min_by_key(|m| WelfareReport::measure(&inst, m).egalitarian_cost)
                .expect("chain is nonempty");
            push("stable-chain-best", best);
            let report = asm(&inst, &AsmConfig::new(0.5)).expect("valid config");
            push("asm eps=0.5", &report.matching);
            cell.rounds = report.rounds;
            cell.blocking_fraction = report.stability(&inst).blocking_fraction();
        });
        cell.wall_ms = wall_ms;
        (rows, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (rows, cell) in results {
        for row in rows {
            t.row(row);
        }
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn four_rows_per_family() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert_eq!(tables[0].len() % 4, 0);
        assert!(tables[0].len() >= 28);
    }
}
