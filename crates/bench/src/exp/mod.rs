//! The experiment suite: one module per table/figure of DESIGN.md §5.
//!
//! Every module exposes `run(quick: bool) -> Vec<Table>`; the matching
//! binary in `src/bin/` prints the tables, and `bin/all_experiments`
//! runs the whole suite (used to produce EXPERIMENTS.md).

pub mod f1_ii_decay;
pub mod f2_amm;
pub mod f3_inner_loop;
pub mod f4_good_men;
pub mod f5_eps_blocking;
pub mod f6_truncated_gs;
pub mod f7_correlation;
pub mod t1_stability;
pub mod t2_rounds;
pub mod t3_randasm;
pub mod t4_almost_regular;
pub mod t5_local_work;
pub mod t6_ablations;
pub mod t7_welfare;
pub mod t8_congest_traffic;

use asm_instance::{generators, Instance};

/// The named instance families every sweep draws from.
pub fn families(n: usize, seed: u64) -> Vec<(&'static str, Instance)> {
    let d = (n / 8).clamp(2, 12);
    vec![
        ("complete", generators::complete(n, seed)),
        ("erdos-renyi", generators::erdos_renyi(n, n, 0.25, seed)),
        ("regular", generators::regular(n, d, seed)),
        ("zipf", generators::zipf(n, d, 1.2, seed)),
        (
            "almost-reg",
            generators::almost_regular(n, d.max(2), 2.0, seed),
        ),
        ("chain", generators::adversarial_chain(n)),
        ("master-list", generators::master_list(n, seed)),
    ]
}

/// Standard "quick vs full" size sweep.
pub fn n_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256, 512, 1024]
    }
}

/// Runs the entire suite in order.
pub fn run_all(quick: bool) -> Vec<crate::Table> {
    let mut tables = Vec::new();
    tables.extend(t1_stability::run(quick));
    tables.extend(t2_rounds::run(quick));
    tables.extend(t3_randasm::run(quick));
    tables.extend(t4_almost_regular::run(quick));
    tables.extend(t5_local_work::run(quick));
    tables.extend(t6_ablations::run(quick));
    tables.extend(t7_welfare::run(quick));
    tables.extend(t8_congest_traffic::run(quick));
    tables.extend(f1_ii_decay::run(quick));
    tables.extend(f2_amm::run(quick));
    tables.extend(f3_inner_loop::run(quick));
    tables.extend(f4_good_men::run(quick));
    tables.extend(f5_eps_blocking::run(quick));
    tables.extend(f6_truncated_gs::run(quick));
    tables.extend(f7_correlation::run(quick));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_cover_the_paper_classes() {
        let fams = families(16, 1);
        assert_eq!(fams.len(), 7);
        let names: Vec<_> = fams.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"complete"));
        assert!(names.contains(&"chain"));
    }

    #[test]
    fn quick_sweep_is_small() {
        assert!(n_sweep(true).len() < n_sweep(false).len());
    }
}
