//! The experiment suite: one module per table/figure of DESIGN.md §5.
//!
//! Every module exposes `run(ctx: &ExpCtx) -> Vec<Table>`; the matching
//! binary in `src/bin/` prints the tables, and `bin/all_experiments`
//! runs the whole suite (used to produce EXPERIMENTS.md).
//!
//! Since PR 2 the suite runs on `asm-runtime`'s deterministic executor:
//! each module fans its sweep grid (family × n × ε × trial) out through
//! [`ExpCtx::exec`], with per-cell seeds derived positionally from
//! [`SWEEP_BASE_SEED`] — so tables are byte-identical for any `--par`
//! value — and records a [`SweepCell`] per grid cell for the
//! `BENCH_sweep.json` artifact the CI perf gate consumes.

pub mod f1_ii_decay;
pub mod f2_amm;
pub mod f3_inner_loop;
pub mod f4_good_men;
pub mod f5_eps_blocking;
pub mod f6_truncated_gs;
pub mod f7_correlation;
pub mod t1_stability;
pub mod t2_rounds;
pub mod t3_randasm;
pub mod t4_almost_regular;
pub mod t5_local_work;
pub mod t6_ablations;
pub mod t7_welfare;
pub mod t8_congest_traffic;

use crate::Table;
use asm_instance::{generators, Instance};
use asm_runtime::{derive_seed, label_hash, Executor, SweepCell};
use std::sync::Mutex;
use std::time::Instant;

/// Base seed of the whole sweep; every cell seed derives from it via
/// [`ExpCtx::seed`]. Changing it re-rolls every recorded table.
pub const SWEEP_BASE_SEED: u64 = 0xA57A_B1E5;

/// Shared execution context for one experiment run.
#[derive(Debug)]
pub struct ExpCtx {
    /// Quick (smoke) sweep sizes.
    pub quick: bool,
    /// The deterministic executor modules fan their grids out on.
    pub exec: Executor,
    /// Render wall-clock table cells as `-` so output can be byte-diffed.
    pub stable_output: bool,
    cells: Mutex<Vec<SweepCell>>,
}

impl ExpCtx {
    /// Creates a context.
    pub fn new(quick: bool, exec: Executor, stable_output: bool) -> Self {
        ExpCtx {
            quick,
            exec,
            stable_output,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Quick single-threaded context (unit tests).
    pub fn quick_serial() -> Self {
        ExpCtx::new(true, Executor::serial(), false)
    }

    /// Derives the seed for a sweep cell from its coordinates only —
    /// never from scheduling. `nums` carries the numeric coordinates
    /// (n, ε-index, trial, ...).
    pub fn seed(&self, experiment: &str, family: &str, nums: &[u64]) -> u64 {
        let mut path = vec![label_hash(experiment), label_hash(family)];
        path.extend_from_slice(nums);
        derive_seed(SWEEP_BASE_SEED, &path)
    }

    /// Records sweep cells (order is irrelevant; the report sorts by
    /// coordinates).
    pub fn record(&self, cells: Vec<SweepCell>) {
        self.cells.lock().expect("cell recorder").extend(cells);
    }

    /// Drains the recorded cells.
    pub fn take_cells(&self) -> Vec<SweepCell> {
        std::mem::take(&mut self.cells.lock().expect("cell recorder"))
    }

    /// Formats a milliseconds value for a table cell, honoring
    /// `stable_output` (timings are the only run-to-run varying cells).
    pub fn fmt_ms(&self, ms: f64) -> String {
        if self.stable_output {
            "-".to_string()
        } else {
            crate::f2(ms)
        }
    }

    /// Runs `f`, returning its result and the elapsed milliseconds.
    pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64() * 1e3)
    }
}

/// Names of the instance families of [`family`], in sweep order.
pub const FAMILY_NAMES: [&str; 7] = [
    "complete",
    "erdos-renyi",
    "regular",
    "zipf",
    "almost-reg",
    "chain",
    "master-list",
];

/// Builds the `idx`-th named family at size `n` from `seed`.
///
/// # Panics
///
/// Panics if `idx >= FAMILY_NAMES.len()`.
pub fn family(idx: usize, n: usize, seed: u64) -> (&'static str, Instance) {
    let d = (n / 8).clamp(2, 12);
    let inst = match idx {
        0 => generators::complete(n, seed),
        1 => generators::erdos_renyi(n, n, 0.25, seed),
        2 => generators::regular(n, d, seed),
        3 => generators::zipf(n, d, 1.2, seed),
        4 => generators::almost_regular(n, d.max(2), 2.0, seed),
        5 => generators::adversarial_chain(n),
        6 => generators::master_list(n, seed),
        _ => panic!("family index {idx} out of range"),
    };
    (FAMILY_NAMES[idx], inst)
}

/// The named instance families every sweep draws from.
pub fn families(n: usize, seed: u64) -> Vec<(&'static str, Instance)> {
    (0..FAMILY_NAMES.len())
        .map(|i| family(i, n, seed))
        .collect()
}

/// Standard "quick vs full" size sweep.
pub fn n_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256, 512, 1024]
    }
}

/// One registered experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Stable id; also the binary name and the `experiment` coordinate
    /// of its sweep cells.
    pub id: &'static str,
    /// Entry point.
    pub run: fn(&ExpCtx) -> Vec<Table>,
}

/// Every experiment, in suite order (T1–T8 then F1–F7).
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "t1_stability",
        run: t1_stability::run,
    },
    Experiment {
        id: "t2_rounds",
        run: t2_rounds::run,
    },
    Experiment {
        id: "t3_randasm",
        run: t3_randasm::run,
    },
    Experiment {
        id: "t4_almost_regular",
        run: t4_almost_regular::run,
    },
    Experiment {
        id: "t5_local_work",
        run: t5_local_work::run,
    },
    Experiment {
        id: "t6_ablations",
        run: t6_ablations::run,
    },
    Experiment {
        id: "t7_welfare",
        run: t7_welfare::run,
    },
    Experiment {
        id: "t8_congest_traffic",
        run: t8_congest_traffic::run,
    },
    Experiment {
        id: "f1_ii_decay",
        run: f1_ii_decay::run,
    },
    Experiment {
        id: "f2_amm",
        run: f2_amm::run,
    },
    Experiment {
        id: "f3_inner_loop",
        run: f3_inner_loop::run,
    },
    Experiment {
        id: "f4_good_men",
        run: f4_good_men::run,
    },
    Experiment {
        id: "f5_eps_blocking",
        run: f5_eps_blocking::run,
    },
    Experiment {
        id: "f6_truncated_gs",
        run: f6_truncated_gs::run,
    },
    Experiment {
        id: "f7_correlation",
        run: f7_correlation::run,
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

/// Runs the entire suite in order on `ctx`.
pub fn run_all_ctx(ctx: &ExpCtx) -> Vec<Table> {
    EXPERIMENTS.iter().flat_map(|e| (e.run)(ctx)).collect()
}

/// Runs the entire suite serially (compatibility entry point).
pub fn run_all(quick: bool) -> Vec<Table> {
    run_all_ctx(&ExpCtx::new(quick, Executor::serial(), false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_cover_the_paper_classes() {
        let fams = families(16, 1);
        assert_eq!(fams.len(), 7);
        let names: Vec<_> = fams.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"complete"));
        assert!(names.contains(&"chain"));
        assert_eq!(names, FAMILY_NAMES.to_vec());
    }

    #[test]
    fn quick_sweep_is_small() {
        assert!(n_sweep(true).len() < n_sweep(false).len());
    }

    #[test]
    fn registry_covers_the_suite_without_duplicates() {
        assert_eq!(EXPERIMENTS.len(), 15);
        let mut ids: Vec<_> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
        assert!(find("t1_stability").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn cell_seeds_are_coordinate_pure() {
        let ctx = ExpCtx::quick_serial();
        let a = ctx.seed("t1", "complete", &[64, 0]);
        assert_eq!(a, ctx.seed("t1", "complete", &[64, 0]));
        assert_ne!(a, ctx.seed("t1", "complete", &[64, 1]));
        assert_ne!(a, ctx.seed("t1", "chain", &[64, 0]));
    }

    #[test]
    fn recorder_accumulates_and_drains() {
        let ctx = ExpCtx::quick_serial();
        ctx.record(vec![SweepCell::new("x", "-", 8, 1.0, 0)]);
        ctx.record(vec![SweepCell::new("y", "-", 8, 1.0, 0)]);
        assert_eq!(ctx.take_cells().len(), 2);
        assert!(ctx.take_cells().is_empty());
    }

    #[test]
    fn stable_output_hides_timings() {
        let mut ctx = ExpCtx::quick_serial();
        assert_eq!(ctx.fmt_ms(1.234), "1.23");
        ctx.stable_output = true;
        assert_eq!(ctx.fmt_ms(1.234), "-");
    }
}
