//! **T8 — extension.** Wire-level validation on the CONGEST engine: every
//! payload fits the `O(log n)` budget (ours are constant-size tags), and
//! total traffic scales with the work the algorithm actually does. Also
//! compares measured rounds against the fast engine's accounting and the
//! Gale–Shapley protocol.

use crate::{f2, Table};
use asm_core::baselines::congest_gs;
use asm_core::congest::asm_congest;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;

/// Runs the measurement and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T8: CONGEST engine wire measurements (messages are O(1)-size tags)",
        &[
            "n",
            "algorithm",
            "rounds",
            "fast-engine rounds",
            "messages",
            "kbits",
            "max msg bits",
        ],
    );
    let sizes: &[usize] = if quick { &[16, 32] } else { &[32, 64, 128] };
    for &n in sizes {
        let inst = generators::erdos_renyi(n, n, 0.3, 0x88);
        for (name, backend) in [
            ("asm/greedy", MatcherBackend::DetGreedy),
            ("asm/proposal", MatcherBackend::BipartiteProposal),
            ("asm/pan-rizzi", MatcherBackend::PanconesiRizzi),
            (
                "asm/ii-32",
                MatcherBackend::IsraeliItai { max_iterations: 32 },
            ),
        ] {
            let config = AsmConfig::new(1.0).with_backend(backend);
            let wire = asm_congest(&inst, &config).expect("supported backend");
            let fast = asm(&inst, &config).expect("valid config");
            assert_eq!(wire.matching, fast.matching, "engines must agree");
            t.row(vec![
                n.to_string(),
                name.to_string(),
                wire.stats.rounds.to_string(),
                fast.rounds.to_string(),
                wire.stats.messages.to_string(),
                f2(wire.stats.bits as f64 / 1000.0),
                wire.stats.max_message_bits.to_string(),
            ]);
        }
        let gs = congest_gs(&inst).expect("valid instance");
        t.row(vec![
            n.to_string(),
            "gale-shapley".to_string(),
            gs.stats.rounds.to_string(),
            "-".to_string(),
            gs.stats.messages.to_string(),
            f2(gs.stats.bits as f64 / 1000.0),
            gs.stats.max_message_bits.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn message_sizes_stay_constant() {
        let tables = super::run(true);
        for line in tables[0].to_markdown().lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 7 {
                let bits: usize = cells[7].parse().unwrap();
                // Tags are <= 8 bits; Panconesi-Rizzi colors are O(log n).
                assert!(bits <= 32, "payload grew beyond O(log n): {bits}");
            }
        }
    }
}
