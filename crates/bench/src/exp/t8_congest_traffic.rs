//! **T8 — extension.** Wire-level validation on the CONGEST engine: every
//! payload fits the `O(log n)` budget (ours are constant-size tags), and
//! total traffic scales with the work the algorithm actually does. Also
//! compares measured rounds against the fast engine's accounting and the
//! Gale–Shapley protocol.

use super::ExpCtx;
use crate::{f2, Table};
use asm_core::baselines::congest_gs;
use asm_core::congest::asm_congest;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "t8_congest_traffic";

const BACKENDS: [(&str, MatcherBackend); 4] = [
    ("asm/greedy", MatcherBackend::DetGreedy),
    ("asm/proposal", MatcherBackend::BipartiteProposal),
    ("asm/pan-rizzi", MatcherBackend::PanconesiRizzi),
    (
        "asm/ii-32",
        MatcherBackend::IsraeliItai { max_iterations: 32 },
    ),
];

/// Runs the measurement and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T8: CONGEST engine wire measurements (messages are O(1)-size tags)",
        &[
            "n",
            "algorithm",
            "rounds",
            "fast-engine rounds",
            "messages",
            "kbits",
            "max msg bits",
        ],
    );
    // Grid: per n, the four ASM backends plus the GS baseline (index 4).
    let sizes: &[usize] = if ctx.quick { &[16, 32] } else { &[32, 64, 128] };
    let mut grid = Vec::new();
    for &n in sizes {
        for algo in 0..=BACKENDS.len() {
            grid.push((n, algo));
        }
    }
    let results = ctx.exec.map(&grid, |_, &(n, algo)| {
        // The instance seed depends on n only, so every backend at a
        // given n measures the same instance.
        let seed = ctx.seed(ID, "erdos-renyi", &[n as u64]);
        let inst = generators::erdos_renyi(n, n, 0.3, seed);
        if algo == BACKENDS.len() {
            let (gs, wall_ms) = ExpCtx::time(|| congest_gs(&inst).expect("valid instance"));
            let mut cell = SweepCell::new(ID, "gale-shapley", n, 1.0, seed);
            cell.wall_ms = wall_ms;
            cell.rounds = gs.stats.rounds;
            cell.messages = gs.stats.messages;
            let row = vec![
                n.to_string(),
                "gale-shapley".to_string(),
                gs.stats.rounds.to_string(),
                "-".to_string(),
                gs.stats.messages.to_string(),
                f2(gs.stats.bits as f64 / 1000.0),
                gs.stats.max_message_bits.to_string(),
            ];
            return (row, cell);
        }
        let (name, backend) = BACKENDS[algo];
        let config = AsmConfig::new(1.0).with_backend(backend);
        let ((wire, fast), wall_ms) = ExpCtx::time(|| {
            let wire = asm_congest(&inst, &config).expect("supported backend");
            let fast = asm(&inst, &config).expect("valid config");
            (wire, fast)
        });
        assert_eq!(wire.matching, fast.matching, "engines must agree");
        let mut cell = SweepCell::new(ID, name, n, 1.0, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = wire.stats.rounds;
        cell.messages = wire.stats.messages;
        let row = vec![
            n.to_string(),
            name.to_string(),
            wire.stats.rounds.to_string(),
            fast.rounds.to_string(),
            wire.stats.messages.to_string(),
            f2(wire.stats.bits as f64 / 1000.0),
            wire.stats.max_message_bits.to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn message_sizes_stay_constant() {
        let tables = super::run(&ExpCtx::quick_serial());
        for line in tables[0].to_markdown().lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 7 {
                let bits: usize = cells[7].parse().unwrap();
                // Tags are <= 8 bits; Panconesi-Rizzi colors are O(log n).
                assert!(bits <= 32, "payload grew beyond O(log n): {bits}");
            }
        }
    }
}
