//! **T3 — Theorem 5.** `RandASM` finds a `(1−ε)`-stable matching with
//! probability ≥ `1−δ` in `O(ε⁻³ log²(n/δε³))` rounds: measure the
//! success rate over seeds and the round counts vs `ASM`'s.

use super::ExpCtx;
use crate::{f2, f4, Table};
use asm_core::{asm, rand_asm, AsmConfig, RandAsmParams};
use asm_instance::generators;
use asm_runtime::SweepCell;

const ID: &str = "t3_randasm";

/// Runs the sweep and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T3: RandASM success rate and rounds (Theorem 5)",
        &[
            "n",
            "delta",
            "seeds",
            "success",
            "mm failures",
            "mean rounds",
            "mean nominal",
            "ASM nominal (HKP)",
        ],
    );
    let sizes: &[usize] = if ctx.quick { &[32] } else { &[64, 256] };
    let trials: u64 = if ctx.quick { 5 } else { 25 };
    let eps = 1.0;
    let mut grid = Vec::new();
    for &n in sizes {
        for (di, delta) in [0.1, 0.01].into_iter().enumerate() {
            grid.push((n, di, delta));
        }
    }
    let results = ctx.exec.map(&grid, |_, &(n, di, delta)| {
        let inst_seed = ctx.seed(ID, "erdos-renyi", &[n as u64]);
        let inst = generators::erdos_renyi(n, n, 0.25, inst_seed);
        let det_nominal = asm(&inst, &AsmConfig::new(eps))
            .expect("valid config")
            .nominal_rounds;
        let mut successes = 0u64;
        let mut mm_failures = 0u64;
        let mut rounds_sum = 0u64;
        let mut nominal_sum = 0u64;
        let mut cell = SweepCell::new(ID, "erdos-renyi", n, delta, inst_seed);
        let ((), wall_ms) = ExpCtx::time(|| {
            for trial in 0..trials {
                let seed = ctx.seed(ID, "trial", &[n as u64, di as u64, trial]);
                let report = rand_asm(&inst, &RandAsmParams::new(eps, delta).with_seed(seed))
                    .expect("valid params");
                if report.stability(&inst).is_one_minus_eps_stable(eps) {
                    successes += 1;
                }
                mm_failures += report.mm_nonmaximal;
                rounds_sum += report.rounds;
                nominal_sum += report.nominal_rounds;
            }
        });
        cell.wall_ms = wall_ms;
        cell.rounds = rounds_sum / trials;
        let row = vec![
            n.to_string(),
            format!("{delta}"),
            trials.to_string(),
            f4(successes as f64 / trials as f64),
            mm_failures.to_string(),
            f2(rounds_sum as f64 / trials as f64),
            f2(nominal_sum as f64 / trials as f64),
            det_nominal.to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn success_rate_is_high() {
        let tables = super::run(&ExpCtx::quick_serial());
        // Success column is the 4th: parse it back out of markdown rows.
        for line in tables[0].to_markdown().lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 4 {
                let rate: f64 = cells[4].parse().unwrap();
                assert!(rate >= 0.6, "success rate {rate} too low");
            }
        }
    }
}
