//! **T5 — Remark 4.** Local computation per round is near-linear: the
//! simulated wall-clock per effective round grows roughly linearly in the
//! instance size (the CONGEST model allows unbounded local computation,
//! but ASM does not need it).

use crate::{f2, Table};
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use std::time::Instant;

/// Runs the measurement and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T5: simulation wall-clock per effective round (Remark 4)",
        &[
            "n",
            "|E|",
            "rounds",
            "total ms",
            "us/round",
            "us/round/edge x1e3",
        ],
    );
    let sizes: &[usize] = if quick {
        &[32, 64]
    } else {
        &[64, 128, 256, 512]
    };
    for &n in sizes {
        let inst = generators::complete(n, 0xD3);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let start = Instant::now();
        let report = asm(&inst, &config).expect("valid config");
        let elapsed = start.elapsed();
        let us_per_round = elapsed.as_micros() as f64 / report.rounds.max(1) as f64;
        t.row(vec![
            n.to_string(),
            inst.num_edges().to_string(),
            report.rounds.to_string(),
            f2(elapsed.as_secs_f64() * 1e3),
            f2(us_per_round),
            f2(us_per_round / inst.num_edges() as f64 * 1e3),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_reports() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 2);
    }
}
