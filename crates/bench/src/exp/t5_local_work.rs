//! **T5 — Remark 4.** Local computation per round is near-linear: the
//! simulated wall-clock per effective round grows roughly linearly in the
//! instance size (the CONGEST model allows unbounded local computation,
//! but ASM does not need it).

use super::ExpCtx;
use crate::Table;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "t5_local_work";

/// Runs the measurement and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T5: simulation wall-clock per effective round (Remark 4)",
        &[
            "n",
            "|E|",
            "rounds",
            "total ms",
            "us/round",
            "us/round/edge x1e3",
        ],
    );
    let sizes: &[usize] = if ctx.quick {
        &[32, 64]
    } else {
        &[64, 128, 256, 512]
    };
    // Timing cells run serially even under --par: concurrent cells would
    // contend for cores and skew each other's wall-clock.
    let mut cells = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let seed = ctx.seed(ID, "complete", &[n as u64]);
        let inst = generators::complete(n, seed);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let us_per_round = wall_ms * 1e3 / report.rounds.max(1) as f64;
        let mut cell = SweepCell::new(ID, "complete", n, 1.0, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        t.row(vec![
            n.to_string(),
            inst.num_edges().to_string(),
            report.rounds.to_string(),
            ctx.fmt_ms(wall_ms),
            ctx.fmt_ms(us_per_round),
            ctx.fmt_ms(us_per_round / inst.num_edges() as f64 * 1e3),
        ]);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn runs_and_reports() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert_eq!(tables[0].len(), 2);
    }

    #[test]
    fn stable_output_masks_every_timing_cell() {
        let mut ctx = ExpCtx::quick_serial();
        ctx.stable_output = true;
        let md = super::run(&ctx)[0].to_markdown();
        for line in md.lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 6 {
                assert_eq!(cells[4], "-");
                assert_eq!(cells[5], "-");
                assert_eq!(cells[6], "-");
            }
        }
    }
}
