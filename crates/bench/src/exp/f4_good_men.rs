//! **F4 — Lemmas 3 & 4.** Good men touch no `(2/k)`-blocking pair
//! (Lemma 3), and at most `4|E|/k` blocking pairs are not
//! `(2/k)`-blocking (Lemma 4).

use super::families;
use crate::Table;
use asm_core::{asm, AsmConfig};
use asm_matching::{blocking_pairs, eps_blocking_pairs};

/// Runs the audit and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "F4: Lemma 3 / Lemma 4 audit per family",
        &[
            "family",
            "blocking",
            "(2/k)-blocking",
            "on good men",
            "non-(2/k)",
            "4|E|/k bound",
            "lemma3 ok",
            "lemma4 ok",
        ],
    );
    let n = if quick { 32 } else { 96 };
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    for (name, inst) in families(n, 0x44) {
        let report = asm(&inst, &config).expect("valid config");
        let blocking = blocking_pairs(&inst, &report.matching);
        let eps_bp = eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
        let on_good = eps_bp
            .iter()
            .filter(|(m, _)| !report.bad_men.contains(m))
            .count();
        let non_2k = blocking.iter().filter(|p| !eps_bp.contains(p)).count();
        let bound = 4.0 * inst.num_edges() as f64 / k;
        t.row(vec![
            name.to_string(),
            blocking.len().to_string(),
            eps_bp.len().to_string(),
            on_good.to_string(),
            non_2k.to_string(),
            format!("{bound:.1}"),
            (on_good == 0).to_string(),
            ((non_2k as f64) <= bound).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn lemmas_hold_on_all_families() {
        let tables = super::run(true);
        assert!(
            !tables[0].to_markdown().contains("false"),
            "a lemma audit failed:\n{}",
            tables[0]
        );
    }
}
