//! **F4 — Lemmas 3 & 4.** Good men touch no `(2/k)`-blocking pair
//! (Lemma 3), and at most `4|E|/k` blocking pairs are not
//! `(2/k)`-blocking (Lemma 4).

use super::{family, ExpCtx, FAMILY_NAMES};
use crate::Table;
use asm_core::{asm, AsmConfig};
use asm_matching::{blocking_pairs, eps_blocking_pairs};
use asm_runtime::SweepCell;

const ID: &str = "f4_good_men";

/// Runs the audit and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "F4: Lemma 3 / Lemma 4 audit per family",
        &[
            "family",
            "blocking",
            "(2/k)-blocking",
            "on good men",
            "non-(2/k)",
            "4|E|/k bound",
            "lemma3 ok",
            "lemma4 ok",
        ],
    );
    let n = if ctx.quick { 32 } else { 96 };
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let fams: Vec<usize> = (0..FAMILY_NAMES.len()).collect();
    let results = ctx.exec.map(&fams, |_, &fam| {
        let seed = ctx.seed(ID, FAMILY_NAMES[fam], &[n as u64]);
        let (name, inst) = family(fam, n, seed);
        let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));
        let blocking = blocking_pairs(&inst, &report.matching);
        let eps_bp = eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
        let on_good = eps_bp
            .iter()
            .filter(|(m, _)| !report.bad_men.contains(m))
            .count();
        let non_2k = blocking.iter().filter(|p| !eps_bp.contains(p)).count();
        let bound = 4.0 * inst.num_edges() as f64 / k;
        let mut cell = SweepCell::new(ID, name, n, 1.0, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = report.stability(&inst).blocking_fraction();
        let row = vec![
            name.to_string(),
            blocking.len().to_string(),
            eps_bp.len().to_string(),
            on_good.to_string(),
            non_2k.to_string(),
            format!("{bound:.1}"),
            (on_good == 0).to_string(),
            ((non_2k as f64) <= bound).to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn lemmas_hold_on_all_families() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert!(
            !tables[0].to_markdown().contains("false"),
            "a lemma audit failed:\n{}",
            tables[0]
        );
    }
}
