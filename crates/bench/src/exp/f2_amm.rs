//! **F2 — Corollary 2.** `AMM(η, δ)` leaves at most an η-fraction of
//! vertices violating maximality with probability ≥ `1−δ`, in
//! `O(log(η⁻¹δ⁻¹))` rounds independent of the graph size.

use super::ExpCtx;
use crate::{f4, Table};
use asm_congest::{NodeId, SplitRng};
use asm_maximal::{amm, iterations_for_amm, violator_fraction, ROUNDS_PER_MATCHING_ROUND};
use asm_runtime::SweepCell;

const ID: &str = "f2_amm";

fn random_bipartite(n: u32, d: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SplitRng::new(seed ^ 0xF2F2);
    (0..n)
        .flat_map(|u| {
            (0..d)
                .map(|_| (u, n + rng.next_range(n as usize) as u32))
                .collect::<Vec<_>>()
        })
        .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
        .collect()
}

/// Runs the sweep and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "F2: AMM(eta, delta) violator fraction vs budget (Corollary 2)",
        &[
            "eta",
            "delta",
            "iterations",
            "rounds",
            "trials",
            "mean violators",
            "success rate",
        ],
    );
    let n: u32 = if ctx.quick { 200 } else { 1000 };
    let trials: u64 = if ctx.quick { 5 } else { 30 };
    let c = 0.6;
    let grid = [(0.1, 0.1), (0.03, 0.1), (0.01, 0.05)];
    let results = ctx.exec.map(&grid, |gi, &(eta, delta)| {
        let iters = iterations_for_amm(eta, delta, c);
        let mut fracs = Vec::new();
        let mut successes = 0u64;
        let cell_seed = ctx.seed(ID, "amm", &[gi as u64]);
        let ((), wall_ms) = ExpCtx::time(|| {
            for trial in 0..trials {
                let seed = ctx.seed(ID, "amm", &[gi as u64, trial]);
                let edges = random_bipartite(n, 4, seed);
                let run = amm(&edges, eta, delta, c, &SplitRng::new(seed ^ 99), 0);
                let frac = violator_fraction(&edges, &run.outcome.pairs);
                if frac <= eta {
                    successes += 1;
                }
                fracs.push(frac);
            }
        });
        let mut cell = SweepCell::new(ID, "amm", n as usize, eta, cell_seed);
        cell.wall_ms = wall_ms;
        cell.rounds = (iters * ROUNDS_PER_MATCHING_ROUND) as u64;
        let row = vec![
            format!("{eta}"),
            format!("{delta}"),
            iters.to_string(),
            (iters * ROUNDS_PER_MATCHING_ROUND).to_string(),
            trials.to_string(),
            f4(fracs.iter().sum::<f64>() / fracs.len() as f64),
            f4(successes as f64 / trials as f64),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn success_rates_meet_delta() {
        let tables = super::run(&ExpCtx::quick_serial());
        for line in tables[0].to_markdown().lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 7 {
                let rate: f64 = cells[7].parse().unwrap();
                assert!(rate >= 0.6, "success rate {rate}");
            }
        }
    }
}
