//! **T1 — Theorem 3.** The matching produced by `ASM` induces at most
//! `ε·|E|` blocking pairs, on every preference family and for every ε.

use super::{family, ExpCtx, FAMILY_NAMES};
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_runtime::SweepCell;

const ID: &str = "t1_stability";
const EPSILONS: [f64; 3] = [1.0, 0.5, 0.25];

/// Runs the sweep and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T1: ASM blocking pairs vs budget eps*|E| (Theorem 3)",
        &[
            "family", "n", "eps", "|E|", "|M|", "blocking", "fraction", "budget", "ok",
        ],
    );
    let sizes: &[usize] = if ctx.quick { &[32] } else { &[64, 256] };
    let mut grid = Vec::new();
    for &n in sizes {
        for fam in 0..FAMILY_NAMES.len() {
            for (ei, eps) in EPSILONS.iter().enumerate() {
                grid.push((n, fam, ei, *eps));
            }
        }
    }
    let results = ctx.exec.map(&grid, |_, &(n, fam, ei, eps)| {
        let seed = ctx.seed(ID, FAMILY_NAMES[fam], &[n as u64, ei as u64]);
        let (name, inst) = family(fam, n, seed);
        let ((report, st), wall_ms) = ExpCtx::time(|| {
            let report = asm(&inst, &AsmConfig::new(eps)).expect("valid config");
            let st = report.stability(&inst);
            (report, st)
        });
        let mut cell = SweepCell::new(ID, name, n, eps, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            name.to_string(),
            n.to_string(),
            format!("{eps}"),
            st.num_edges.to_string(),
            st.matching_size.to_string(),
            st.blocking_pairs.to_string(),
            f4(st.blocking_fraction()),
            f4(eps),
            st.is_one_minus_eps_stable(eps).to_string(),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn every_row_meets_budget() {
        let ctx = ExpCtx::quick_serial();
        let tables = super::run(&ctx);
        let md = tables[0].to_markdown();
        assert!(!md.contains("| false |"), "a run exceeded its eps budget");
        assert!(tables[0].len() >= 21); // 7 families x 3 epsilons
        assert_eq!(ctx.take_cells().len(), tables[0].len());
    }
}
