//! **T1 — Theorem 3.** The matching produced by `ASM` induces at most
//! `ε·|E|` blocking pairs, on every preference family and for every ε.

use super::families;
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};

/// Runs the sweep and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T1: ASM blocking pairs vs budget eps*|E| (Theorem 3)",
        &[
            "family", "n", "eps", "|E|", "|M|", "blocking", "fraction", "budget", "ok",
        ],
    );
    let sizes: &[usize] = if quick { &[32] } else { &[64, 256] };
    let epsilons = [1.0, 0.5, 0.25];
    for &n in sizes {
        for (name, inst) in families(n, 0xA5) {
            for eps in epsilons {
                let report = asm(&inst, &AsmConfig::new(eps)).expect("valid config");
                let st = report.stability(&inst);
                t.row(vec![
                    name.to_string(),
                    n.to_string(),
                    format!("{eps}"),
                    st.num_edges.to_string(),
                    st.matching_size.to_string(),
                    st.blocking_pairs.to_string(),
                    f4(st.blocking_fraction()),
                    f4(eps),
                    st.is_one_minus_eps_stable(eps).to_string(),
                ]);
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_row_meets_budget() {
        let tables = super::run(true);
        let md = tables[0].to_markdown();
        assert!(!md.contains("| false |"), "a run exceeded its eps budget");
        assert!(tables[0].len() >= 21); // 7 families x 3 epsilons
    }
}
