//! **F6 — Comparison with Floréen et al. \[3\].** On bounded (d-regular)
//! preference lists, truncated Gale–Shapley trades rounds for blocking
//! pairs; ASM achieves its target with a fixed schedule. The crossover
//! shape: truncated GS is excellent for small d (the regime of \[3\]),
//! while ASM's guarantee is degree-independent.

use super::ExpCtx;
use crate::{f4, Table};
use asm_core::baselines::{distributed_gs, truncated_gs};
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_matching::StabilityReport;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "f6_truncated_gs";

/// Runs the sweep and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let n = if ctx.quick { 64 } else { 256 };
    let ds = [4usize, 16];
    let results = ctx.exec.map(&ds, |_, &d| {
        let seed = ctx.seed(ID, "regular", &[n as u64, d as u64]);
        let inst = generators::regular(n, d, seed);
        let mut t = Table::new(
            &format!("F6: truncated GS vs ASM on {d}-regular lists (n = {n})"),
            &[
                "algorithm",
                "rounds",
                "blocking",
                "fraction",
                "matching size",
            ],
        );
        let mut cell = SweepCell::new(ID, "regular", d, 1.0, seed);
        let ((), wall_ms) = ExpCtx::time(|| {
            for cycles in [1u64, 2, 4, 8, 16, 32] {
                let tr = truncated_gs(&inst, cycles);
                let st = StabilityReport::analyze(&inst, &tr.matching);
                t.row(vec![
                    format!("GS@{cycles} cycles"),
                    tr.rounds.to_string(),
                    st.blocking_pairs.to_string(),
                    f4(st.blocking_fraction()),
                    st.matching_size.to_string(),
                ]);
            }
            let full = distributed_gs(&inst);
            let st = StabilityReport::analyze(&inst, &full.matching);
            t.row(vec![
                "GS full".to_string(),
                full.rounds.to_string(),
                st.blocking_pairs.to_string(),
                f4(st.blocking_fraction()),
                st.matching_size.to_string(),
            ]);
            for eps in [1.0, 0.25] {
                let config = AsmConfig::new(eps).with_backend(MatcherBackend::DetGreedy);
                let report = asm(&inst, &config).expect("valid config");
                let st = report.stability(&inst);
                cell.rounds = report.rounds;
                cell.blocking_fraction = st.blocking_fraction();
                t.row(vec![
                    format!("ASM eps={eps}"),
                    report.rounds.to_string(),
                    st.blocking_pairs.to_string(),
                    f4(st.blocking_fraction()),
                    st.matching_size.to_string(),
                ]);
            }
        });
        cell.wall_ms = wall_ms;
        (t, cell)
    });
    let mut tables = Vec::with_capacity(results.len());
    let mut cells = Vec::with_capacity(results.len());
    for (t, cell) in results {
        tables.push(t);
        cells.push(cell);
    }
    ctx.record(cells);
    tables
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn full_gs_row_is_stable() {
        let tables = super::run(&ExpCtx::quick_serial());
        for t in &tables {
            let md = t.to_markdown();
            let gs_full = md
                .lines()
                .find(|l| l.contains("GS full"))
                .expect("GS full row present");
            let cells: Vec<&str> = gs_full.split('|').map(str::trim).collect();
            assert_eq!(cells[3], "0", "full GS must have zero blocking pairs");
        }
    }
}
