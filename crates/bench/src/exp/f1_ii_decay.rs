//! **F1 — Lemma 8 / Corollary 1.** Israeli–Itai's surviving-vertex count
//! decays geometrically: `E|V₁| ≤ c·|V₀|` for an absolute `c < 1`.
//! Measures the per-iteration decay ratio and the iterations needed for
//! maximality.

use super::ExpCtx;
use crate::{f4, Table};
use asm_congest::{NodeId, SplitRng};
use asm_maximal::israeli_itai;
use asm_runtime::SweepCell;

const ID: &str = "f1_ii_decay";

fn random_bipartite(n: u32, d: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SplitRng::new(seed);
    (0..n)
        .flat_map(|u| {
            (0..d)
                .map(|_| (u, n + rng.next_range(n as usize) as u32))
                .collect::<Vec<_>>()
        })
        .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
        .collect()
}

/// Runs the measurement and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let n: u32 = if ctx.quick { 200 } else { 2000 };
    let trials: u64 = if ctx.quick { 5 } else { 20 };
    let mut cells = Vec::new();

    let mut series = Table::new(
        "F1a: Israeli-Itai survivor series |V_i| (one seed, d = 4)",
        &["iteration", "survivors", "ratio |V_i|/|V_i-1|"],
    );
    let series_seed = ctx.seed(ID, "series", &[n as u64]);
    let edges = random_bipartite(n, 4, series_seed);
    let (run, wall_ms) =
        ExpCtx::time(|| israeli_itai(&edges, 10_000, &SplitRng::new(series_seed), 0));
    for (i, w) in run.survivors.windows(2).enumerate() {
        series.row(vec![
            (i + 1).to_string(),
            w[1].to_string(),
            if w[0] > 0 {
                f4(w[1] as f64 / w[0] as f64)
            } else {
                "-".to_string()
            },
        ]);
    }
    let mut series_cell = SweepCell::new(ID, "series", n as usize, 1.0, series_seed);
    series_cell.wall_ms = wall_ms;
    series_cell.rounds = run.outcome.iterations;
    cells.push(series_cell);

    let mut decay = Table::new(
        "F1b: measured decay constant c and iterations to maximality (Lemma 8 / Corollary 1)",
        &[
            "d",
            "trials",
            "mean c",
            "max c",
            "mean iters",
            "max iters",
            "log2(n)",
        ],
    );
    let ds = [2usize, 4, 8];
    let decay_results = ctx.exec.map(&ds, |_, &d| {
        let mut ratios = Vec::new();
        let mut iters = Vec::new();
        let cell_seed = ctx.seed(ID, "decay", &[d as u64]);
        let ((), wall_ms) = ExpCtx::time(|| {
            for trial in 0..trials {
                let seed = ctx.seed(ID, "decay", &[d as u64, trial]);
                let edges = random_bipartite(n, d, seed);
                let run = israeli_itai(&edges, 10_000, &SplitRng::new(seed ^ 31), 0);
                iters.push(run.outcome.iterations as f64);
                for w in run.survivors.windows(2) {
                    if w[0] >= 20 {
                        ratios.push(w[1] as f64 / w[0] as f64);
                    }
                }
            }
        });
        let mean_c = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let max_c = ratios.iter().cloned().fold(0.0, f64::max);
        let mean_it = iters.iter().sum::<f64>() / iters.len() as f64;
        let max_it = iters.iter().cloned().fold(0.0, f64::max);
        let mut cell = SweepCell::new(ID, "decay", d, 1.0, cell_seed);
        cell.wall_ms = wall_ms;
        cell.rounds = mean_it as u64;
        let row = vec![
            d.to_string(),
            trials.to_string(),
            f4(mean_c),
            f4(max_c),
            f4(mean_it),
            f4(max_it),
            f4((2.0 * n as f64).log2()),
        ];
        (row, cell)
    });
    for (row, cell) in decay_results {
        decay.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![series, decay]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn decay_constant_below_one() {
        let tables = super::run(&ExpCtx::quick_serial());
        for line in tables[1].to_markdown().lines().skip(4) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 3 {
                let mean_c: f64 = cells[3].parse().unwrap();
                assert!(mean_c < 0.9, "mean decay {mean_c} not clearly below 1");
            }
        }
    }
}
