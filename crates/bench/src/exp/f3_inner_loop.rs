//! **F3 — Lemmas 2 & 6.** Convergence of the inner loop: the bad-man
//! count decreases across `QuantileMatch` calls and ends below the
//! δ-fraction of Lemma 6; every `QuantileMatch` empties all active sets
//! within `k` `ProposalRound`s (Lemma 2 — enforced by a debug assertion
//! in the engine, surfaced here as the executed-PRs-per-QM column).

use super::ExpCtx;
use crate::{f4, Table};
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_runtime::SweepCell;

const ID: &str = "f3_inner_loop";

/// Runs the instrumented execution and returns the result tables.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let n = if ctx.quick { 48 } else { 256 };
    let seed = ctx.seed(ID, "complete", &[n as u64]);
    let inst = generators::complete(n, seed);
    let config = AsmConfig::new(1.0);
    let delta = config.delta();
    let k = config.quantile_count() as u64;
    let (report, wall_ms) = ExpCtx::time(|| asm(&inst, &config).expect("valid config"));

    let mut t = Table::new(
        "F3a: per-QuantileMatch convergence on a complete instance",
        &[
            "outer i",
            "inner j",
            "matched men",
            "exhausted",
            "bad men",
            "bad frac",
            "rounds so far",
        ],
    );
    for s in &report.snapshots {
        t.row(vec![
            s.outer.to_string(),
            s.inner.to_string(),
            s.matched_men.to_string(),
            s.exhausted_men.to_string(),
            s.bad_men.to_string(),
            f4(s.bad_men as f64 / inst.ids().num_men() as f64),
            s.rounds_so_far.to_string(),
        ]);
    }

    let mut summary = Table::new(
        "F3b: Lemma 2 / Lemma 6 summary",
        &["quantity", "value", "bound"],
    );
    summary.row(vec![
        "final bad fraction".into(),
        f4(report.bad_fraction(inst.ids().num_men())),
        format!("delta = {delta}"),
    ]);
    summary.row(vec![
        "executed PRs".into(),
        report.executed_proposal_rounds.to_string(),
        format!("<= {} per QM (k)", k),
    ]);
    summary.row(vec![
        "executed QMs with traffic".into(),
        report.snapshots.len().to_string(),
        format!("of {} scheduled", report.scheduled_quantile_matches),
    ]);

    let mut cell = SweepCell::new(ID, "complete", n, 1.0, seed);
    cell.wall_ms = wall_ms;
    cell.rounds = report.rounds;
    cell.blocking_fraction = report.stability(&inst).blocking_fraction();
    ctx.record(vec![cell]);
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn bad_men_eventually_zero_on_complete() {
        let tables = super::run(&ExpCtx::quick_serial());
        // On a complete instance the last snapshot should show 0 bad men
        // (everyone matched; complete markets admit perfect matchings).
        let md = tables[0].to_markdown();
        let last = md.lines().last().unwrap();
        let cells: Vec<&str> = last.split('|').map(str::trim).collect();
        let bad: usize = cells[5].parse().unwrap();
        assert_eq!(bad, 0, "final snapshot has bad men: {last}");
    }
}
