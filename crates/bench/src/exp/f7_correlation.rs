//! **F7 — extension.** Sensitivity to preference *correlation*: T1 shows
//! the master-list instance (everyone agrees) is consistently ASM's worst
//! case. This experiment interpolates from full agreement to independent
//! uniform rankings via [`asm_instance::generators::noisy_master`]'s swap
//! noise, plus the spatially correlated
//! [`asm_instance::generators::geometric`] family, and watches blocking
//! fraction, rounds, and Gale–Shapley proposal counts.

use crate::{f2, f4, Table};
use asm_core::baselines::distributed_gs;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;

/// Runs the sweep and returns the result table.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 32 } else { 128 };
    let mut t = Table::new(
        "F7: ASM under correlated preferences (noise 0 = master list)",
        &[
            "instance",
            "asm blocking frac",
            "asm rounds",
            "asm executed PRs",
            "gs rounds",
            "gs proposals/n",
        ],
    );
    let eps = 0.5;
    let mut push = |label: String, inst: &asm_instance::Instance| {
        let config = AsmConfig::new(eps).with_backend(MatcherBackend::DetGreedy);
        let report = asm(inst, &config).expect("valid config");
        let st = report.stability(inst);
        assert!(st.is_one_minus_eps_stable(eps), "{label}");
        let gs = distributed_gs(inst);
        t.row(vec![
            label,
            f4(st.blocking_fraction()),
            report.rounds.to_string(),
            report.executed_proposal_rounds.to_string(),
            gs.rounds.to_string(),
            f2(gs.proposals as f64 / n as f64),
        ]);
    };
    for noise in [0.0, 0.25, 1.0, 4.0, 16.0] {
        let inst = generators::noisy_master(n, noise, 0xF7);
        push(format!("noisy-master {noise}"), &inst);
    }
    let inst = generators::geometric(n, (n / 8).max(2), 0xF7);
    push("geometric".to_string(), &inst);
    let inst = generators::complete(n, 0xF7);
    push("independent".to_string(), &inst);
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_meet_budget_and_cover_spectrum() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 7);
    }
}
