//! **F7 — extension.** Sensitivity to preference *correlation*: T1 shows
//! the master-list instance (everyone agrees) is consistently ASM's worst
//! case. This experiment interpolates from full agreement to independent
//! uniform rankings via [`asm_instance::generators::noisy_master`]'s swap
//! noise, plus the spatially correlated
//! [`asm_instance::generators::geometric`] family, and watches blocking
//! fraction, rounds, and Gale–Shapley proposal counts.

use super::ExpCtx;
use crate::{f2, f4, Table};
use asm_core::baselines::distributed_gs;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use asm_runtime::SweepCell;

const ID: &str = "f7_correlation";

const NOISES: [f64; 5] = [0.0, 0.25, 1.0, 4.0, 16.0];

/// Runs the sweep and returns the result table.
pub fn run(ctx: &ExpCtx) -> Vec<Table> {
    let n = if ctx.quick { 32 } else { 128 };
    let mut t = Table::new(
        "F7: ASM under correlated preferences (noise 0 = master list)",
        &[
            "instance",
            "asm blocking frac",
            "asm rounds",
            "asm executed PRs",
            "gs rounds",
            "gs proposals/n",
        ],
    );
    let eps = 0.5;
    // Grid indices: 0..NOISES.len() are noisy-master points, then the
    // geometric and independent (complete) instances.
    let grid: Vec<usize> = (0..NOISES.len() + 2).collect();
    let results = ctx.exec.map(&grid, |_, &gi| {
        let (label, fam, inst) = if gi < NOISES.len() {
            let noise = NOISES[gi];
            let seed = ctx.seed(ID, "noisy-master", &[n as u64, gi as u64]);
            (
                format!("noisy-master {noise}"),
                "noisy-master",
                generators::noisy_master(n, noise, seed),
            )
        } else if gi == NOISES.len() {
            let seed = ctx.seed(ID, "geometric", &[n as u64]);
            (
                "geometric".to_string(),
                "geometric",
                generators::geometric(n, (n / 8).max(2), seed),
            )
        } else {
            let seed = ctx.seed(ID, "independent", &[n as u64]);
            (
                "independent".to_string(),
                "independent",
                generators::complete(n, seed),
            )
        };
        let seed = ctx.seed(ID, fam, &[n as u64, gi as u64]);
        let config = AsmConfig::new(eps).with_backend(MatcherBackend::DetGreedy);
        let ((report, gs), wall_ms) = ExpCtx::time(|| {
            let report = asm(&inst, &config).expect("valid config");
            let gs = distributed_gs(&inst);
            (report, gs)
        });
        let st = report.stability(&inst);
        assert!(st.is_one_minus_eps_stable(eps), "{label}");
        let mut cell = SweepCell::new(ID, fam, n, gi as f64, seed);
        cell.wall_ms = wall_ms;
        cell.rounds = report.rounds;
        cell.blocking_fraction = st.blocking_fraction();
        let row = vec![
            label,
            f4(st.blocking_fraction()),
            report.rounds.to_string(),
            report.executed_proposal_rounds.to_string(),
            gs.rounds.to_string(),
            f2(gs.proposals as f64 / n as f64),
        ];
        (row, cell)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (row, cell) in results {
        t.row(row);
        cells.push(cell);
    }
    ctx.record(cells);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::super::ExpCtx;

    #[test]
    fn all_rows_meet_budget_and_cover_spectrum() {
        let tables = super::run(&ExpCtx::quick_serial());
        assert_eq!(tables[0].len(), 7);
    }
}
