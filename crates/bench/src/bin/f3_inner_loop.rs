//! Prints the f3_inner_loop experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f3_inner_loop::run(asm_bench::quick_flag()));
}
