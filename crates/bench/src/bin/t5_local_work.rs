//! Prints the t5_local_work experiment tables (see DESIGN.md §5) and writes
//! its `BENCH_sweep.json`; accepts the shared sweep flags (`--quick`,
//! `--par N`, `--csv`, `--markdown`, `--stable-output`, `--no-sweep`).
fn main() {
    asm_bench::run_binary(&["t5_local_work"]);
}
