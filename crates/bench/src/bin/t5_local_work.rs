//! Prints the t5_local_work experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t5_local_work::run(asm_bench::quick_flag()));
}
