//! Prints the f5_eps_blocking experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f5_eps_blocking::run(
        asm_bench::quick_flag(),
    ));
}
