//! Prints the t7_welfare experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t7_welfare::run(asm_bench::quick_flag()));
}
