//! Prints the t2_rounds experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t2_rounds::run(asm_bench::quick_flag()));
}
