//! Prints the f2_amm experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f2_amm::run(asm_bench::quick_flag()));
}
