//! CI perf-regression gate: compares a fresh `BENCH_sweep.json` against
//! the committed baseline and fails (exit 1) when any experiment's
//! wall-clock regressed beyond the tolerance.
//!
//! ```text
//! perf_gate --baseline results/bench_baseline.json \
//!           --current BENCH_sweep.json [--tolerance 0.25]
//! ```
//!
//! The tolerance is a fractional slowdown (0.25 = +25%); the
//! `BENCH_GATE_TOLERANCE` environment variable overrides the default
//! when no `--tolerance` flag is given. Experiments faster than the
//! noise floor (`GATE_FLOOR_MS`) are never flagged, and experiments new
//! in the current run are allowed; experiments *missing* from the
//! current run fail the gate.

use asm_runtime::{sweep, SweepReport};
use std::process::ExitCode;

struct GateArgs {
    baseline: String,
    current: String,
    tolerance: f64,
}

fn parse_args() -> Result<GateArgs, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next(),
            "--current" => current = args.next(),
            "--tolerance" => {
                let raw = args.next().ok_or("--tolerance needs a value")?;
                tolerance = Some(
                    raw.parse::<f64>()
                        .map_err(|e| format!("--tolerance: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let tolerance = match tolerance {
        Some(t) => t,
        None => match std::env::var("BENCH_GATE_TOLERANCE") {
            Ok(raw) => raw
                .parse::<f64>()
                .map_err(|e| format!("BENCH_GATE_TOLERANCE: {e}"))?,
            Err(_) => 0.25,
        },
    };
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(format!(
            "tolerance must be a finite fraction >= 0, got {tolerance}"
        ));
    }
    Ok(GateArgs {
        baseline: baseline.ok_or("--baseline <path> is required")?,
        current: current.ok_or("--current <path> is required")?,
        tolerance,
    })
}

fn load(path: &str) -> Result<SweepReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    SweepReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("perf_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf gate: {} baseline experiments vs {} current, tolerance +{:.0}% (floor {} ms)",
        baseline.per_experiment_ms().len(),
        current.per_experiment_ms().len(),
        args.tolerance * 100.0,
        sweep::GATE_FLOOR_MS,
    );
    let mut current_by_exp = current.per_experiment_ms();
    for (experiment, base_ms) in baseline.per_experiment_ms() {
        match current_by_exp.remove(&experiment) {
            Some(cur_ms) => println!(
                "  {experiment}: {base_ms:.1} ms -> {cur_ms:.1} ms ({:+.1}%)",
                (cur_ms / base_ms.max(f64::MIN_POSITIVE) - 1.0) * 100.0
            ),
            None => println!("  {experiment}: missing from current run"),
        }
    }
    for (experiment, cur_ms) in current_by_exp {
        println!("  {experiment}: new ({cur_ms:.1} ms, not gated)");
    }
    let regressions = sweep::compare(&baseline, &current, args.tolerance);
    if regressions.is_empty() {
        println!("perf gate: OK");
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("perf gate FAIL: {r}");
        }
        ExitCode::FAILURE
    }
}
