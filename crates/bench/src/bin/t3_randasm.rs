//! Prints the t3_randasm experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t3_randasm::run(asm_bench::quick_flag()));
}
