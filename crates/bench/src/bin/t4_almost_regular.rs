//! Prints the t4_almost_regular experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t4_almost_regular::run(
        asm_bench::quick_flag(),
    ));
}
