//! Prints the f4_good_men experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f4_good_men::run(asm_bench::quick_flag()));
}
