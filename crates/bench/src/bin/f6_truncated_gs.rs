//! Prints the f6_truncated_gs experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f6_truncated_gs::run(
        asm_bench::quick_flag(),
    ));
}
