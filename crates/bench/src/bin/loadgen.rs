//! `loadgen`: replay a deterministic seeded request mix against a
//! running `asm serve` instance.
//!
//! ```text
//! cargo run --release -p asm-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7464 --requests 10000 --concurrency 8 --seed 1 \
//!     --verify-metrics --expect-zero-errors --shutdown \
//!     --report load_report.json --sweep-out loadgen_sweep.json
//! ```
//!
//! Exit codes: 0 success, 1 a requested check failed (protocol errors,
//! metrics mismatch, or an `--expect-*` assertion violated), 2 usage
//! error. Pointed at an `asm route` front tier, `--expect-backend-spread`
//! asserts the mix actually fanned out and `--expect-failover` asserts
//! the router rerouted around a dead backend; the router's merged books
//! are audited for internal consistency whenever metrics are fetched.
//! The report's deterministic section depends only on the mix seed (see
//! `asm_bench::loadgen`); `--sweep-out` writes a `SweepReport` the
//! perf-gate tooling understands.

use asm_bench::churn::{run_churn, verify_market_metrics, ChurnConfig};
use asm_bench::loadgen::{control, run_mix, verify_metrics, verify_router_books, MixConfig};
use asm_service::{Op, Reply, ServiceConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--requests N] [--concurrency C]
               [--connections N] [--seed S] [--families a,b] [--sizes 16,32] [--algorithms asm,gs]
               [--eps E] [--delta D] [--deadline-ms MS] [--distinct-instances K]
               [--open-rate RPS] [--batch N] [--report PATH] [--sweep-out PATH]
               [--verify-metrics] [--expect-zero-errors] [--shutdown]
               [--expect-backend-spread] [--expect-failover]
               [--shards-sweep 1,2,4,8] [--workers N]
               [--churn] [--markets N] [--mutations N] [--resolve-mode auto|warm|cold]
               [--normalized-report PATH]

--connections N fans N sockets out across the --concurrency threads
(one frame in flight per socket); 0 means one socket per thread.

--expect-backend-spread and --expect-failover target an `asm route`
front tier: spread requires at least two backends to have solved
something, failover requires the router's failover counter to be
positive. Both fetch metrics and audit the router's merged books.

With --shards-sweep, loadgen ignores --addr: it starts one in-process
server per listed shard count (port 0), replays the same mix against
each, verifies metrics reconciliation, and writes one combined
SweepReport (cells annotated with their shard count) to --sweep-out.

With --churn, loadgen drives the persistent-market tier instead of the
solve mix: it creates --markets markets over --families/--sizes, sends
--mutations seeded single-op mutation+resolve pairs round-robin across
them (verifying every resolve against the conformance oracles and a
local cold solve of the same mutated instance), drops the markets, and
reports warm vs cold convergence. --verify-metrics reconciles against
the server's market counters; --report writes the full ChurnReport and
--normalized-report a wall-clock-free view two same-seed runs must
reproduce byte-identically.";

struct Args {
    addr: String,
    mix: MixConfig,
    report: Option<String>,
    sweep_out: Option<String>,
    verify: bool,
    expect_zero_errors: bool,
    expect_backend_spread: bool,
    expect_failover: bool,
    shutdown: bool,
    shards_sweep: Vec<u64>,
    workers: usize,
    churn: bool,
    markets: u64,
    mutations: u64,
    resolve_mode: String,
    normalized_report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7464".to_string(),
        mix: MixConfig::default(),
        report: None,
        sweep_out: None,
        verify: false,
        expect_zero_errors: false,
        expect_backend_spread: false,
        expect_failover: false,
        shutdown: false,
        shards_sweep: Vec::new(),
        workers: 4,
        churn: false,
        markets: 4,
        mutations: 1000,
        resolve_mode: "auto".to_string(),
        normalized_report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--requests" => args.mix.requests = parsed(&value("--requests")?, "--requests")?,
            "--concurrency" => {
                args.mix.concurrency = parsed(&value("--concurrency")?, "--concurrency")?
            }
            "--connections" => {
                args.mix.connections = parsed(&value("--connections")?, "--connections")?
            }
            "--seed" => args.mix.seed = parsed(&value("--seed")?, "--seed")?,
            "--families" => args.mix.families = list(&value("--families")?),
            "--sizes" => {
                args.mix.sizes = list(&value("--sizes")?)
                    .iter()
                    .map(|s| parsed(s, "--sizes"))
                    .collect::<Result<_, _>>()?
            }
            "--algorithms" => args.mix.algorithms = list(&value("--algorithms")?),
            "--eps" => args.mix.eps = parsed(&value("--eps")?, "--eps")?,
            "--delta" => args.mix.delta = parsed(&value("--delta")?, "--delta")?,
            "--deadline-ms" => {
                args.mix.deadline_ms = parsed(&value("--deadline-ms")?, "--deadline-ms")?
            }
            "--distinct-instances" => {
                args.mix.distinct_instances =
                    parsed(&value("--distinct-instances")?, "--distinct-instances")?
            }
            "--open-rate" => {
                args.mix.open_rate_rps = parsed(&value("--open-rate")?, "--open-rate")?
            }
            "--batch" => args.mix.batch = parsed(&value("--batch")?, "--batch")?,
            "--shards-sweep" => {
                args.shards_sweep = list(&value("--shards-sweep")?)
                    .iter()
                    .map(|s| parsed(s, "--shards-sweep"))
                    .collect::<Result<_, _>>()?
            }
            "--workers" => args.workers = parsed(&value("--workers")?, "--workers")?,
            "--churn" => args.churn = true,
            "--markets" => args.markets = parsed(&value("--markets")?, "--markets")?,
            "--mutations" => args.mutations = parsed(&value("--mutations")?, "--mutations")?,
            "--resolve-mode" => args.resolve_mode = value("--resolve-mode")?,
            "--normalized-report" => args.normalized_report = Some(value("--normalized-report")?),
            "--report" => args.report = Some(value("--report")?),
            "--sweep-out" => args.sweep_out = Some(value("--sweep-out")?),
            "--verify-metrics" => args.verify = true,
            "--expect-zero-errors" => args.expect_zero_errors = true,
            "--expect-backend-spread" => args.expect_backend_spread = true,
            "--expect-failover" => args.expect_failover = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.mix.families.is_empty() || args.mix.sizes.is_empty() || args.mix.algorithms.is_empty() {
        return Err("families, sizes, and algorithms must be non-empty".to_string());
    }
    if args.churn && args.markets == 0 {
        return Err("--churn needs --markets >= 1".to_string());
    }
    Ok(args)
}

fn parsed<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("flag {flag}: cannot parse `{text}`"))
}

fn list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Self-serve shard sweep: one in-process server per shard count, the
/// same mix replayed against each, all cells merged into one
/// `SweepReport` keyed by their `shards` column.
fn run_shards_sweep(args: &Args) -> ExitCode {
    let mut combined = asm_runtime::SweepReport::new(args.mix.concurrency as usize, false);
    let mut failed = false;
    for &shards in &args.shards_sweep {
        if shards == 0 {
            eprintln!("loadgen: --shards-sweep entries must be >= 1");
            return ExitCode::from(2);
        }
        let config = ServiceConfig {
            workers: args.workers,
            shards: shards as usize,
            ..ServiceConfig::default()
        };
        let handle = match asm_service::serve("127.0.0.1:0", config) {
            Ok(handle) => handle,
            Err(err) => {
                eprintln!("loadgen: cannot start in-process server: {err}");
                return ExitCode::from(1);
            }
        };
        let addr = handle.addr().to_string();
        let report = match run_mix(&addr, &args.mix) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("loadgen: cannot reach in-process server {addr}: {err}");
                handle.shutdown();
                handle.wait();
                return ExitCode::from(1);
            }
        };
        println!(
            "loadgen: shards={shards} | solved {} | overloaded {} | errors {} | {:.1} ms wall, {:.0} req/s",
            report.succeeded,
            report.rejected,
            report.solve_errors + report.protocol_errors,
            report.wall.total_ms,
            report.wall.throughput_rps
        );
        match control(&addr, Op::Metrics) {
            Ok(Reply::Metrics(snapshot)) => {
                for m in verify_metrics(&report, &snapshot) {
                    failed = true;
                    eprintln!("loadgen: shards={shards} metrics mismatch: {m}");
                }
            }
            _ => {
                failed = true;
                eprintln!("loadgen: shards={shards}: cannot fetch metrics");
            }
        }
        if args.expect_zero_errors
            && (report.solve_errors > 0 || report.protocol_errors > 0 || report.rejected > 0)
        {
            failed = true;
            eprintln!(
                "loadgen: shards={shards}: --expect-zero-errors violated: {} solve errors, {} protocol errors, {} rejected",
                report.solve_errors, report.protocol_errors, report.rejected
            );
        }
        handle.shutdown();
        handle.wait();
        let sweep = report.to_sweep();
        combined.total_wall_ms += sweep.total_wall_ms;
        combined.extend(sweep.cells);
    }
    if let Some(path) = &args.sweep_out {
        if let Err(err) = std::fs::write(path, combined.to_json()) {
            eprintln!("loadgen: cannot write sweep report {path}: {err}");
            failed = true;
        } else {
            println!(
                "loadgen: wrote {} cells across shard counts {:?} to {path}",
                combined.cells.len(),
                args.shards_sweep
            );
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Churn mode: drive the persistent-market tier with a seeded mutation
/// stream and report warm-vs-cold convergence (see `asm_bench::churn`).
fn run_churn_mode(args: &Args) -> ExitCode {
    let config = ChurnConfig {
        markets: args.markets,
        mutations: args.mutations,
        seed: args.mix.seed,
        families: args.mix.families.clone(),
        sizes: args.mix.sizes.clone(),
        eps: args.mix.eps,
        mode: args.resolve_mode.clone(),
    };
    // Reconciliation is a delta over whatever market activity the
    // server saw before this run, so repeated runs against one
    // long-lived server stay verifiable.
    let baseline = if args.verify {
        match control(&args.addr, Op::Metrics) {
            Ok(Reply::Metrics(snapshot)) => snapshot.market,
            _ => {
                eprintln!("loadgen: cannot fetch the pre-run metrics baseline");
                return ExitCode::from(1);
            }
        }
    } else {
        None
    };
    let report = match run_churn(&args.addr, &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: cannot reach {}: {err}", args.addr);
            return ExitCode::from(1);
        }
    };

    println!(
        "loadgen: churn over {} markets | {} mutations applied | {} warm / {} cold resolves | {} fallbacks",
        report.markets_created,
        report.ops_applied,
        report.warm_resolves,
        report.cold_resolves,
        report.fallbacks
    );
    match (report.warm_median_rounds, report.cold_median_rounds) {
        (Some(warm), Some(cold)) => println!(
            "loadgen: median rounds per single-op mutation: {warm} warm vs {cold} cold baseline"
        ),
        _ => println!("loadgen: no warm resolves happened (no medians to compare)"),
    }
    println!(
        "loadgen: {:.1} ms wall, {:.0} mutation+resolve pairs/s",
        report.wall.total_ms, report.wall.pairs_per_sec
    );

    let mut failed = false;
    if report.protocol_errors > 0 {
        failed = true;
        eprintln!(
            "loadgen: {} protocol errors (run aborted at the first one — the mirror lost lockstep)",
            report.protocol_errors
        );
    }
    for failure in &report.oracle_failures {
        failed = true;
        eprintln!("loadgen: oracle violation: {failure}");
    }
    if args.expect_zero_errors && report.ops_applied != args.mutations {
        failed = true;
        eprintln!(
            "loadgen: --expect-zero-errors violated: {} of {} mutations applied",
            report.ops_applied, args.mutations
        );
    }

    if args.verify {
        match control(&args.addr, Op::Metrics) {
            Ok(Reply::Metrics(snapshot)) => {
                let mismatches = verify_market_metrics(&report, baseline.as_ref(), &snapshot);
                if mismatches.is_empty() {
                    println!("loadgen: market metrics reconcile with the server's counters");
                }
                for m in mismatches {
                    failed = true;
                    eprintln!("loadgen: market metrics mismatch: {m}");
                }
            }
            Ok(other) => {
                failed = true;
                eprintln!("loadgen: metrics request drew `{}`", other.tag());
            }
            Err(err) => {
                failed = true;
                eprintln!("loadgen: cannot fetch metrics: {err}");
            }
        }
    }

    if let Some(path) = &args.report {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("loadgen: cannot write report {path}: {err}");
            failed = true;
        }
    }
    if let Some(path) = &args.normalized_report {
        if let Err(err) = std::fs::write(path, report.normalized().to_json()) {
            eprintln!("loadgen: cannot write normalized report {path}: {err}");
            failed = true;
        }
    }

    if args.shutdown {
        match control(&args.addr, Op::Shutdown) {
            Ok(Reply::ShuttingDown) => println!("loadgen: server acknowledged shutdown"),
            Ok(other) => {
                failed = true;
                eprintln!("loadgen: shutdown request drew `{}`", other.tag());
            }
            Err(err) => {
                failed = true;
                eprintln!("loadgen: cannot send shutdown: {err}");
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("loadgen: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.churn {
        return run_churn_mode(&args);
    }
    if !args.shards_sweep.is_empty() {
        return run_shards_sweep(&args);
    }

    let report = match run_mix(&args.addr, &args.mix) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: cannot reach {}: {err}", args.addr);
            return ExitCode::from(1);
        }
    };

    println!(
        "loadgen: sent {} | solved {} | overloaded {} | deadline {} | errors {} | protocol errors {}",
        report.sent,
        report.succeeded,
        report.rejected,
        report.deadline_exceeded,
        report.solve_errors,
        report.protocol_errors
    );
    println!(
        "loadgen: {:.1} ms wall, {:.0} req/s, {} cached responses",
        report.wall.total_ms, report.wall.throughput_rps, report.wall.cached_responses
    );

    let mut failed = false;

    let snapshot = if args.verify || args.expect_backend_spread || args.expect_failover {
        match control(&args.addr, Op::Metrics) {
            Ok(Reply::Metrics(snapshot)) => Some(snapshot),
            Ok(other) => {
                failed = true;
                eprintln!("loadgen: metrics request drew `{}`", other.tag());
                None
            }
            Err(err) => {
                failed = true;
                eprintln!("loadgen: cannot fetch metrics: {err}");
                None
            }
        }
    } else {
        None
    };

    if let Some(snapshot) = &snapshot {
        if args.verify {
            let mismatches = verify_metrics(&report, snapshot);
            if mismatches.is_empty() {
                println!("loadgen: metrics reconcile with the server's counters");
            } else {
                failed = true;
                for m in &mismatches {
                    eprintln!("loadgen: metrics mismatch: {m}");
                }
            }
        }
        // A router peer's merged books are audited against themselves
        // whenever metrics were fetched — this holds even when a dead
        // backend makes loadgen-vs-server reconciliation impossible.
        let books = verify_router_books(snapshot);
        if !snapshot.backends.is_empty() && books.is_empty() {
            println!(
                "loadgen: router books balance across {} backends",
                snapshot.backends.len()
            );
        }
        for m in &books {
            failed = true;
            eprintln!("loadgen: router books mismatch: {m}");
        }
        if args.expect_backend_spread {
            let spread = snapshot.backends.iter().filter(|b| b.solved > 0).count();
            if spread >= 2 {
                println!("loadgen: solves spread across {spread} backends");
            } else {
                failed = true;
                eprintln!(
                    "loadgen: --expect-backend-spread violated: {spread} of {} backends solved anything",
                    snapshot.backends.len()
                );
            }
        }
        if args.expect_failover {
            match &snapshot.router {
                Some(router) if router.failovers > 0 => {
                    println!("loadgen: router recorded {} failover(s)", router.failovers);
                }
                Some(router) => {
                    failed = true;
                    eprintln!(
                        "loadgen: --expect-failover violated: router recorded {} failovers",
                        router.failovers
                    );
                }
                None => {
                    failed = true;
                    eprintln!(
                        "loadgen: --expect-failover needs an `asm route` peer (no router block in metrics)"
                    );
                }
            }
        }
    }

    if args.expect_zero_errors
        && (report.solve_errors > 0 || report.protocol_errors > 0 || report.rejected > 0)
    {
        failed = true;
        eprintln!(
            "loadgen: --expect-zero-errors violated: {} solve errors, {} protocol errors, {} rejected",
            report.solve_errors, report.protocol_errors, report.rejected
        );
    }
    if report.protocol_errors > 0 {
        failed = true;
        eprintln!(
            "loadgen: {} protocol errors (unparseable or misrouted frames)",
            report.protocol_errors
        );
    }

    if let Some(path) = &args.report {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("loadgen: cannot write report {path}: {err}");
            failed = true;
        }
    }
    if let Some(path) = &args.sweep_out {
        if let Err(err) = std::fs::write(path, report.to_sweep().to_json()) {
            eprintln!("loadgen: cannot write sweep report {path}: {err}");
            failed = true;
        }
    }

    if args.shutdown {
        match control(&args.addr, Op::Shutdown) {
            Ok(Reply::ShuttingDown) => println!("loadgen: server acknowledged shutdown"),
            Ok(other) => {
                failed = true;
                eprintln!("loadgen: shutdown request drew `{}`", other.tag());
            }
            Err(err) => {
                failed = true;
                eprintln!("loadgen: cannot send shutdown: {err}");
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
