//! Prints the t1_stability experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t1_stability::run(asm_bench::quick_flag()));
}
