//! Runs the full experiment suite and prints every table; `--markdown`
//! emits GitHub-flavored Markdown (used to build EXPERIMENTS.md), `--csv`
//! emits comma-separated values for plotting.
fn main() {
    let quick = asm_bench::quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    for t in asm_bench::exp::run_all(quick) {
        if markdown {
            println!("{}", t.to_markdown());
        } else if csv {
            println!("# {}", t.title());
            println!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
}
