//! Runs the full experiment suite and prints every table; `--markdown`
//! emits GitHub-flavored Markdown (used to build EXPERIMENTS.md), `--csv`
//! emits comma-separated values for plotting.
//!
//! The sweep grids run on the deterministic executor: `--par N` fans
//! cells across `N` threads with per-cell derived seeds, so the tables
//! are byte-identical for every `N` (`--stable-output` additionally
//! masks wall-clock cells, making whole runs diffable). A machine-
//! readable `BENCH_sweep.json` is written for the CI perf gate; see
//! `--sweep-out` / `--no-sweep`.
fn main() {
    let ids: Vec<&str> = asm_bench::exp::EXPERIMENTS.iter().map(|e| e.id).collect();
    asm_bench::run_binary(&ids);
}
