//! `dist_sweep`: distributed-execution scaling sweep.
//!
//! Runs the same seeded instances through `run_distributed` at each
//! listed process count, checks every run against the in-process CONGEST
//! engine (byte-identical report, clean transport), and reports
//! wall-clock, rounds, and messages per cell. Rounds and messages are
//! partition-invariant by construction — the sweep demonstrates that the
//! *protocol* cost is fixed while wall-clock varies with the process
//! count — and any divergence is a hard failure, so the sweep doubles as
//! a conformance gate.
//!
//! ```text
//! cargo run --release -p asm-bench --bin dist_sweep -- \
//!     --procs 1,2,4,8 --n 48 --seed 1 --eps 1.0 \
//!     [--families regular,zipf] [--node-bin PATH] [--sweep-out PATH]
//! ```
//!
//! Cells carry their process count in the `shards` column (the sweep
//! schema's serving-layer dimension). Exit codes: 0 success, 1 a run
//! failed or diverged, 2 usage error.

use asm_core::congest::{asm_congest, RunPlan};
use asm_core::AsmConfig;
use asm_distributed::{run_distributed, sibling_node_bin, DistOptions};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;
use asm_runtime::{derive_seed, SweepCell, SweepReport};
use std::process::ExitCode;
use std::time::Instant;

const ID: &str = "dist_sweep";

const USAGE: &str = "usage: dist_sweep [--procs 1,2,4,8] [--n N] [--seed S] [--eps E]
                  [--families a,b] [--node-bin PATH] [--sweep-out PATH]";

struct Args {
    procs: Vec<usize>,
    n: usize,
    seed: u64,
    eps: f64,
    families: Vec<String>,
    node_bin: Option<String>,
    sweep_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        procs: vec![1, 2, 4, 8],
        n: 48,
        seed: 1,
        eps: 1.0,
        families: vec!["regular".to_string(), "zipf".to_string()],
        node_bin: None,
        sweep_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--procs" => {
                args.procs = value("--procs")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("--procs: bad `{s}`")))
                    .collect::<Result<_, _>>()?
            }
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--eps" => args.eps = value("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--families" => {
                args.families = value("--families")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--node-bin" => args.node_bin = Some(value("--node-bin")?),
            "--sweep-out" => args.sweep_out = Some(value("--sweep-out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.procs.is_empty() || args.procs.contains(&0) {
        return Err("--procs entries must be >= 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("dist_sweep: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let node_bin = args
        .node_bin
        .clone()
        .map(Into::into)
        .unwrap_or_else(sibling_node_bin);

    let mut report = SweepReport::new(1, false);
    let started = Instant::now();
    println!("family | n | procs | wall_ms | rounds | messages");
    for family in &args.families {
        let cell_seed = derive_seed(args.seed, &[args.n as u64]);
        let Some(gen) = GeneratorConfig::all_families(args.n, cell_seed)
            .into_iter()
            .find(|c| c.family() == *family)
        else {
            eprintln!("dist_sweep: unknown family `{family}`");
            return ExitCode::from(2);
        };
        let inst = gen.build();
        let config = AsmConfig::new(args.eps).with_backend(MatcherBackend::DetGreedy);
        let expected = match asm_congest(&inst, &config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("dist_sweep: in-process run failed for {gen}: {e}");
                return ExitCode::from(1);
            }
        };
        let plan = RunPlan::asm(&inst, &config).expect("config already validated");

        for &procs in &args.procs {
            let opts = DistOptions::new(procs, &node_bin);
            let run_started = Instant::now();
            let run = match run_distributed(&inst, &plan, &opts) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("dist_sweep: {gen} across {procs} procs failed: {e}");
                    return ExitCode::from(1);
                }
            };
            let wall_ms = run_started.elapsed().as_secs_f64() * 1e3;
            if run.report != expected {
                eprintln!(
                    "dist_sweep: {gen} across {procs} procs diverged from the in-process engine"
                );
                return ExitCode::from(1);
            }
            if !run.transport.is_clean() {
                eprintln!(
                    "dist_sweep: {gen} across {procs} procs needed retries on a clean transport"
                );
                return ExitCode::from(1);
            }
            let mut cell = SweepCell::new(ID, family, args.n, args.eps, cell_seed);
            cell.shards = procs as u64;
            cell.wall_ms = wall_ms;
            cell.rounds = run.report.stats.rounds;
            cell.messages = run.report.stats.messages;
            println!(
                "{family} | {} | {procs} | {wall_ms:.1} | {} | {}",
                args.n, run.report.stats.rounds, run.report.stats.messages
            );
            report.cells.push(cell);
        }
    }
    report.total_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    if let Some(path) = &args.sweep_out {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("dist_sweep: cannot write sweep report {path}: {err}");
            return ExitCode::from(1);
        }
        println!("dist_sweep: wrote {} cells to {path}", report.cells.len());
    }
    ExitCode::SUCCESS
}
