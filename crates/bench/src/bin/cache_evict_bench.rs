//! `cache_evict_bench`: microbenchmark for the result cache's eviction
//! path. Fills a cache to capacity, then times `put` calls that each
//! must evict the LRU entry. With the intrusive doubly-linked LRU the
//! cost per evicting put is O(1) — flat as capacity grows — where the
//! old full-scan eviction was O(capacity).
//!
//! ```text
//! cargo run --release -p asm-bench --bin cache_evict_bench -- \
//!     --out results/cache_eviction.json
//! ```
//!
//! Exit codes: 0 success, 2 usage error. Timings are wall-clock and
//! machine-dependent; the committed artifact documents the shape (flat),
//! not absolute numbers.

use asm_service::{ResultCache, SolveKey, SolveResult};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

const CAPACITIES: &[usize] = &[256, 1024, 4096, 16384, 65536];

fn key(i: u64) -> SolveKey {
    SolveKey {
        instance_hash: i,
        algorithm: "gs".to_string(),
        eps_bits: 0,
        delta_bits: 0,
        seed: i,
        backend: "greedy".to_string(),
        cycles: 0,
    }
}

fn result() -> SolveResult {
    SolveResult {
        matching: asm_matching::Matching::new(4),
        matched: 2,
        num_edges: 6,
        blocking_pairs: 0,
        rounds: 3,
        messages: 12,
        cached: false,
    }
}

/// ns per evicting `put` against a cache pre-filled to `capacity`.
fn bench(capacity: usize, puts: u64) -> f64 {
    let cache = ResultCache::new(capacity);
    for i in 0..capacity as u64 {
        cache.put(key(i), result());
    }
    assert_eq!(cache.len(), capacity, "cache must be full before timing");
    let start = Instant::now();
    for i in 0..puts {
        cache.put(key(capacity as u64 + i), result());
    }
    let elapsed = start.elapsed().as_nanos() as f64 / puts as f64;
    assert_eq!(cache.len(), capacity, "every timed put must evict");
    elapsed
}

#[derive(Serialize)]
struct Cell {
    capacity: usize,
    puts: u64,
    ns_per_evicting_put: f64,
}

#[derive(Serialize)]
struct Report {
    schema: u64,
    cells: Vec<Cell>,
    /// slowest / fastest ns-per-put across capacities — near 1.0 for an
    /// O(1) eviction path, ~capacity-ratio for a scan.
    spread: f64,
}

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut puts: u64 = 200_000;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--out", Some(path)) => out = Some(path),
            ("--puts", Some(n)) => match n.parse() {
                Ok(n) => puts = n,
                Err(_) => {
                    eprintln!("cache_evict_bench: cannot parse --puts `{n}`");
                    return ExitCode::from(2);
                }
            },
            (other, _) => {
                eprintln!("cache_evict_bench: unknown or valueless flag {other}");
                eprintln!("usage: cache_evict_bench [--out PATH] [--puts N]");
                return ExitCode::from(2);
            }
        }
    }

    // Warm up allocator and caches before timing.
    bench(CAPACITIES[0], puts.min(10_000));

    let cells: Vec<Cell> = CAPACITIES
        .iter()
        .map(|&capacity| {
            let ns = bench(capacity, puts);
            println!("cache_evict_bench: capacity {capacity:>6} -> {ns:.1} ns/evicting put");
            Cell {
                capacity,
                puts,
                ns_per_evicting_put: ns,
            }
        })
        .collect();
    let fastest = cells
        .iter()
        .map(|c| c.ns_per_evicting_put)
        .fold(f64::INFINITY, f64::min);
    let slowest = cells
        .iter()
        .map(|c| c.ns_per_evicting_put)
        .fold(0.0, f64::max);
    let spread = if fastest > 0.0 {
        slowest / fastest
    } else {
        0.0
    };
    println!(
        "cache_evict_bench: spread {spread:.2}x across a {}x capacity range",
        CAPACITIES[CAPACITIES.len() - 1] / CAPACITIES[0]
    );

    let report = Report {
        schema: 1,
        cells,
        spread,
    };
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("cache_evict_bench: cannot write {path}: {err}");
            return ExitCode::from(1);
        }
        println!("cache_evict_bench: wrote {path}");
    }
    ExitCode::SUCCESS
}
