//! Prints the t8_congest_traffic experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t8_congest_traffic::run(
        asm_bench::quick_flag(),
    ));
}
