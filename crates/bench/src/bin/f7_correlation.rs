//! Prints the f7_correlation experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f7_correlation::run(asm_bench::quick_flag()));
}
