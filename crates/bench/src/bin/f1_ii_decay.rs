//! Prints the f1_ii_decay experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::f1_ii_decay::run(asm_bench::quick_flag()));
}
