//! Prints the t6_ablations experiment tables (see DESIGN.md §5).
fn main() {
    asm_bench::print_tables(&asm_bench::exp::t6_ablations::run(asm_bench::quick_flag()));
}
