//! Churn workload for the stateful market tier of `asm-service`.
//!
//! A [`ChurnConfig`] is a seeded recipe for a *mutation stream* over a
//! set of persistent markets: the generator creates each market on the
//! server, keeps a byte-identical **client-side mirror**
//! ([`asm_market::MarketState`]) in lockstep, and then replays
//! `mutations` single-op `market_mutate` + `resolve` pairs round-robin
//! across the markets. Op `i` is derived *from the mirror* via
//! [`MarketState::seeded_op`] — a pure function of (current preference
//! lists, seed) — so the op the generator sends is exactly the op the
//! server would derive from its own copy of the state, and the mirror
//! stays in lockstep by applying the same op after the server accepts
//! it.
//!
//! Because the mirror holds the full mutated instance, every `resolved`
//! reply is verified on the spot:
//!
//! * **conformance oracles** — `check_matching` and
//!   `check_blocking_budget` from `asm-conformance` run against the
//!   mirror's instance, so "stable" means the same thing here as in the
//!   differential batteries;
//! * **cold comparison** — a cold solve of a *fork* of the mirrored
//!   state yields the rounds-to-quiescence a from-scratch solve of the
//!   same mutated instance costs, and the warm path must match its
//!   blocking-pair count exactly (both run to quiescence).
//!
//! The [`ChurnReport`] separates deterministic content (per-mutation
//! rounds/blocking-pairs, warm/cold tallies, medians) from wall-clock
//! noise ([`ChurnWall`]) — CI asserts two same-seed runs agree exactly
//! under [`ChurnReport::normalized`] — and
//! [`verify_market_metrics`] reconciles the generator's books against
//! the server's `market` metrics block: every mutation and resolve the
//! generator sent must be accounted for, exactly.

use crate::loadgen::instance_config;
use asm_core::RunSummary;
use asm_market::{MarketState, ResolveMode};
use asm_runtime::derive_seed;
use asm_service::{
    MarketCreateBody, MarketDropBody, MarketMutateBody, MarketSnapshot, MetricsSnapshot, Op, Reply,
    Request, ResolveBody, ResolveResult, Response,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Schema version of [`ChurnReport`].
pub const CHURN_SCHEMA: u64 = 1;

/// A deterministic, seeded churn recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Persistent markets to create (mutations round-robin over them).
    pub markets: u64,
    /// Total single-op mutations to send; each is followed by one
    /// `resolve` of the mutated market.
    pub mutations: u64,
    /// Root seed: market `m` builds its instance from
    /// `derive_seed(seed, [1, m])`, mutation `i` derives its op from
    /// `derive_seed(seed, [2, i])`.
    pub seed: u64,
    /// Instance families to cycle markets through (same names as the
    /// solve mix: `complete`, `regular`, `erdos_renyi`, `zipf`, `chain`,
    /// `master_list`).
    pub families: Vec<String>,
    /// Instance sizes to cycle markets through.
    pub sizes: Vec<u64>,
    /// Blocking-pair budget ε for every market.
    pub eps: f64,
    /// Resolve mode sent after every mutation (`auto`, `warm`, `cold`).
    pub mode: String,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            markets: 4,
            mutations: 200,
            seed: 1,
            families: vec!["regular".to_string(), "complete".to_string()],
            sizes: vec![16, 32],
            eps: 0.5,
            mode: "auto".to_string(),
        }
    }
}

impl ChurnConfig {
    /// The market id of market `m` (the shard-affinity key).
    pub fn market_id(&self, m: u64) -> String {
        format!("churn-{}-{m}", self.seed)
    }

    /// The generator recipe market `m` is created from. Pure: depends
    /// only on the config and `m`, so the client mirror and the server
    /// build bit-identical instances.
    pub fn market_config(&self, m: u64) -> asm_instance::generators::GeneratorConfig {
        let family = &self.families[(m % self.families.len() as u64) as usize];
        let n = self.sizes[((m / self.families.len() as u64) % self.sizes.len() as u64) as usize];
        instance_config(family, n, derive_seed(self.seed, &[1, m]))
    }

    /// The op seed of mutation `i`.
    fn op_seed(&self, i: u64) -> u64 {
        derive_seed(self.seed, &[2, i])
    }
}

/// One mutation's convergence record: what the server's resolve cost,
/// against what a cold solve of the same mutated instance would cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MutationRecord {
    /// Mutation index in the stream.
    pub index: u64,
    /// The market this mutation hit.
    pub market: u64,
    /// The path the server's resolve ran: `warm` or `cold`.
    pub mode: String,
    /// Whether the server fell back (warm eligible, cold ran).
    pub fallback: bool,
    /// Propose-accept rounds the server's resolve executed.
    pub rounds: u64,
    /// Rounds a cold solve of the same mutated instance costs (solved
    /// locally on a fork of the mirror).
    pub cold_rounds: u64,
    /// Blocking pairs of the server's result (0: quiescence).
    pub blocking_pairs: u64,
    /// Matched pairs of the server's result.
    pub matched: u64,
    /// `|E|` of the market after this mutation.
    pub num_edges: u64,
    /// The market's mutation epoch the resolve reflects.
    pub epoch: u64,
}

/// Nondeterministic wall-clock measurements, quarantined so the rest of
/// the report compares exactly across same-seed runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnWall {
    /// End-to-end wall-clock of the run, ms.
    pub total_ms: f64,
    /// Mutation+resolve pairs per second.
    pub pairs_per_sec: f64,
}

/// The result of replaying a churn recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// [`CHURN_SCHEMA`].
    pub schema: u64,
    /// The recipe that was replayed (the report is self-describing).
    pub config: ChurnConfig,
    /// Markets successfully created.
    pub markets_created: u64,
    /// Markets successfully dropped at the end of the run.
    pub markets_dropped: u64,
    /// Baseline resolves sent right after creation (one per market,
    /// necessarily cold: there is no cached matching yet).
    pub initial_resolves: u64,
    /// Mutation ops accepted by the server (`applied` sums).
    pub ops_applied: u64,
    /// Resolves (initial + per-mutation) that ran the warm path.
    pub warm_resolves: u64,
    /// Resolves that ran cold.
    pub cold_resolves: u64,
    /// Resolves where warm was eligible but cold ran (dirty fraction
    /// over the limit, or the divergence safety net).
    pub fallbacks: u64,
    /// Σ rounds over warm resolves (mirrors the server counter).
    pub warm_rounds_total: u64,
    /// Σ rounds over cold resolves.
    pub cold_rounds_total: u64,
    /// Unparseable / wrong-id / unexpected frames — always 0 against a
    /// healthy server. The run aborts on the first one (the mirror can
    /// no longer be trusted to be in lockstep).
    pub protocol_errors: u64,
    /// Conformance-oracle violations and warm-vs-cold stability
    /// mismatches, verbatim. Always empty against a correct server.
    pub oracle_failures: Vec<String>,
    /// Per-mutation convergence records, in stream order.
    pub per_mutation: Vec<MutationRecord>,
    /// Median server rounds over mutations whose resolve ran warm.
    pub warm_median_rounds: Option<u64>,
    /// Median *local cold* rounds over those same mutations — the
    /// apples-to-apples baseline the warm median must beat.
    pub cold_median_rounds: Option<u64>,
    /// Nondeterministic wall-clock measurements.
    pub wall: ChurnWall,
}

impl ChurnReport {
    /// The report with wall-clock stats zeroed: two same-seed runs must
    /// be equal under this view.
    pub fn normalized(&self) -> ChurnReport {
        ChurnReport {
            wall: ChurnWall::default(),
            ..self.clone()
        }
    }

    /// Renders as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("churn report serializes")
    }
}

/// Wraps a resolve result as the [`RunSummary`] the conformance oracles
/// consume. The market engine runs to quiescence, so every man is good
/// and none is removed; rounds are `2 · cycles`.
fn as_summary(result: &ResolveResult) -> RunSummary {
    RunSummary {
        matching: result.matching.clone(),
        scheduled_proposal_rounds: result.rounds / 2,
        executed_proposal_rounds: result.rounds / 2,
        good_men: 0,
        bad_men: Vec::new(),
        removed_men: Vec::new(),
    }
}

fn median(mut values: Vec<u64>) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    Some(values[values.len() / 2])
}

/// One line-protocol connection with an id-checked request/reply cycle.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
            next_id: 0,
        })
    }

    /// Sends `op`, reads one reply line, and returns the reply if the
    /// frame parsed and echoed the request id (`None` = protocol error).
    fn exchange(&mut self, op: Op) -> std::io::Result<Option<Reply>> {
        let id = self.next_id;
        self.next_id += 1;
        let line = asm_service::protocol::render(&Request { id: Some(id), op });
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        let response: Response = match serde_json::from_str(reply.trim_end()) {
            Ok(response) => response,
            Err(_) => return Ok(None),
        };
        if response.id != Some(id) {
            return Ok(None);
        }
        Ok(Some(response.reply))
    }
}

/// Replays `config` against the server at `addr`.
///
/// The run aborts (rather than limping on) at the first protocol error
/// or unexpected reply: once an exchange goes wrong the mirror can no
/// longer be assumed in lockstep, and every later check would be noise.
/// The abort is visible as `protocol_errors > 0` plus short books.
///
/// # Errors
///
/// Returns connection-level I/O errors.
pub fn run_churn(addr: &str, config: &ChurnConfig) -> std::io::Result<ChurnReport> {
    let mut report = ChurnReport {
        schema: CHURN_SCHEMA,
        config: config.clone(),
        markets_created: 0,
        markets_dropped: 0,
        initial_resolves: 0,
        ops_applied: 0,
        warm_resolves: 0,
        cold_resolves: 0,
        fallbacks: 0,
        warm_rounds_total: 0,
        cold_rounds_total: 0,
        protocol_errors: 0,
        oracle_failures: Vec::new(),
        per_mutation: Vec::new(),
        warm_median_rounds: None,
        cold_median_rounds: None,
        wall: ChurnWall::default(),
    };
    let start = Instant::now();
    let mut conn = Conn::open(addr)?;
    let mut mirrors: Vec<MarketState> = Vec::new();

    // Create every market, mirroring it locally, then take the cold
    // baseline resolve that seeds the cached matching warm starts
    // re-enter from.
    'setup: for m in 0..config.markets {
        let gen = config.market_config(m);
        let mirror = MarketState::from_instance(&gen.build(), config.eps)
            .expect("churn generator families always build valid markets");
        let create = Op::MarketCreate(MarketCreateBody {
            market: config.market_id(m),
            instance: asm_service::InstanceSpec::Generator(gen),
            eps: config.eps,
        });
        match conn.exchange(create)? {
            Some(Reply::MarketCreated(info)) if info.agents == mirror.agents() as u64 => {
                report.markets_created += 1;
            }
            _ => {
                report.protocol_errors += 1;
                break 'setup;
            }
        }
        match conn.exchange(Op::Resolve(ResolveBody {
            market: config.market_id(m),
            mode: config.mode.clone(),
        }))? {
            Some(Reply::Resolved(result)) => {
                report.initial_resolves += 1;
                tally_resolve(&mut report, &result);
            }
            _ => {
                report.protocol_errors += 1;
                break 'setup;
            }
        }
        mirrors.push(mirror);
    }

    // The mutation stream: derive the op from the mirror, send it, keep
    // the mirror in lockstep, resolve, verify.
    if report.protocol_errors == 0 {
        'stream: for i in 0..config.mutations {
            let m = i % config.markets;
            let mirror = &mut mirrors[m as usize];
            let op = mirror.seeded_op(config.op_seed(i));
            match conn.exchange(Op::MarketMutate(MarketMutateBody {
                market: config.market_id(m),
                ops: vec![op.clone()],
            }))? {
                Some(Reply::MarketMutated(info)) if info.applied == 1 => {
                    report.ops_applied += info.applied;
                }
                _ => {
                    report.protocol_errors += 1;
                    break 'stream;
                }
            }
            mirror
                .apply(&op)
                .expect("an op the server accepted applies to the lockstep mirror");
            let result = match conn.exchange(Op::Resolve(ResolveBody {
                market: config.market_id(m),
                mode: config.mode.clone(),
            }))? {
                Some(Reply::Resolved(result)) => result,
                _ => {
                    report.protocol_errors += 1;
                    break 'stream;
                }
            };
            tally_resolve(&mut report, &result);
            verify_resolve(&mut report, mirror, i, m, &result);
        }
    }

    // Tear down: drop every created market so the server ends with
    // zero open markets (the reconciliation asserts it).
    for m in 0..report.markets_created {
        match conn.exchange(Op::MarketDrop(MarketDropBody {
            market: config.market_id(m),
        }))? {
            Some(Reply::MarketDropped(_)) => report.markets_dropped += 1,
            _ => report.protocol_errors += 1,
        }
    }

    let warm: Vec<&MutationRecord> = report
        .per_mutation
        .iter()
        .filter(|r| r.mode == "warm")
        .collect();
    report.warm_median_rounds = median(warm.iter().map(|r| r.rounds).collect());
    report.cold_median_rounds = median(warm.iter().map(|r| r.cold_rounds).collect());
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    report.wall = ChurnWall {
        total_ms,
        pairs_per_sec: if total_ms > 0.0 {
            report.per_mutation.len() as f64 / total_ms * 1e3
        } else {
            0.0
        },
    };
    Ok(report)
}

fn tally_resolve(report: &mut ChurnReport, result: &ResolveResult) {
    if result.mode == "warm" {
        report.warm_resolves += 1;
        report.warm_rounds_total += result.rounds;
    } else {
        report.cold_resolves += 1;
        report.cold_rounds_total += result.rounds;
    }
    if result.fallback {
        report.fallbacks += 1;
    }
}

/// Verifies one mutation's resolve against the mirror: conformance
/// oracles on the mirrored instance, blocking-pair parity with a local
/// cold solve of the same state, and records the convergence numbers.
fn verify_resolve(
    report: &mut ChurnReport,
    mirror: &MarketState,
    index: u64,
    market: u64,
    result: &ResolveResult,
) {
    use asm_conformance::oracle::{check_blocking_budget, check_matching};
    let inst = mirror.instance();
    let summary = as_summary(result);
    if let Some(v) = check_matching(&inst, &summary) {
        report
            .oracle_failures
            .push(format!("mutation {index} (market {market}): {v}"));
    }
    if let Some(v) = check_blocking_budget(&inst, &summary, mirror.eps()) {
        report
            .oracle_failures
            .push(format!("mutation {index} (market {market}): {v}"));
    }
    let mut fork = mirror.clone();
    let cold = fork.resolve(ResolveMode::Cold);
    if cold.blocking_pairs != result.blocking_pairs {
        report.oracle_failures.push(format!(
            "mutation {index} (market {market}): resolve reports {} blocking pairs, a cold solve \
             of the same instance reports {}",
            result.blocking_pairs, cold.blocking_pairs
        ));
    }
    report.per_mutation.push(MutationRecord {
        index,
        market,
        mode: result.mode.clone(),
        fallback: result.fallback,
        rounds: result.rounds,
        cold_rounds: cold.rounds,
        blocking_pairs: result.blocking_pairs,
        matched: result.matched,
        num_edges: result.num_edges,
        epoch: result.epoch,
    });
}

/// Reconciles a [`ChurnReport`] against the server's `market` metrics
/// block, as a **delta**: `baseline` is the market block fetched before
/// the run (`None` on a server with no prior market activity), and
/// every counter the run moved must satisfy `baseline + generator's
/// books == server's books` — which makes repeated runs against one
/// long-lived server verifiable (the nightly seed rotation relies on
/// it). Returns the mismatches (empty ⇔ the books balance). Assumes
/// the generator was the server's only market client *during* the run,
/// and that the snapshot was taken after it (so `markets_open` is back
/// at the baseline).
pub fn verify_market_metrics(
    report: &ChurnReport,
    baseline: Option<&MarketSnapshot>,
    snapshot: &MetricsSnapshot,
) -> Vec<String> {
    let Some(market) = &snapshot.market else {
        return vec![
            "market block missing from metrics after a churn run (no market op was counted?)"
                .to_string(),
        ];
    };
    let before = |f: fn(&MarketSnapshot) -> u64| baseline.map_or(0, f);
    let mut mismatches = Vec::new();
    let mut check = |name: &str, ours: u64, theirs: u64| {
        if ours != theirs {
            mismatches.push(format!(
                "{name}: baseline + churn generator counted {ours}, server metrics say {theirs}"
            ));
        }
    };
    check(
        "markets_created",
        before(|m| m.markets_created) + report.markets_created,
        market.markets_created,
    );
    check(
        "markets_dropped",
        before(|m| m.markets_dropped) + report.markets_dropped,
        market.markets_dropped,
    );
    check(
        "markets_open",
        before(|m| m.markets_open),
        market.markets_open,
    );
    check(
        "mutations",
        before(|m| m.mutations) + report.ops_applied,
        market.mutations,
    );
    check(
        "warm_resolves",
        before(|m| m.warm_resolves) + report.warm_resolves,
        market.warm_resolves,
    );
    check(
        "cold_resolves",
        before(|m| m.cold_resolves) + report.cold_resolves,
        market.cold_resolves,
    );
    check(
        "warm + cold resolves vs resolves sent",
        before(|m| m.warm_resolves + m.cold_resolves)
            + report.initial_resolves
            + report.per_mutation.len() as u64,
        market.warm_resolves + market.cold_resolves,
    );
    check(
        "fallbacks",
        before(|m| m.fallbacks) + report.fallbacks,
        market.fallbacks,
    );
    check(
        "warm_rounds_total",
        before(|m| m.warm_rounds_total) + report.warm_rounds_total,
        market.warm_rounds_total,
    );
    check(
        "cold_rounds_total",
        before(|m| m.cold_rounds_total) + report.cold_rounds_total,
        market.cold_rounds_total,
    );
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_service::ServiceConfig;

    #[test]
    fn market_configs_are_pure_and_cycle_the_grid() {
        let config = ChurnConfig::default();
        for m in 0..8 {
            assert_eq!(
                config.market_config(m),
                config.market_config(m),
                "market {m}"
            );
        }
        // 2 families × 2 sizes: the 4-market default covers the grid.
        let recipes: Vec<_> = (0..4).map(|m| config.market_config(m)).collect();
        assert!(recipes
            .iter()
            .all(|r| recipes.iter().filter(|o| o == &r).count() == 1));
    }

    #[test]
    fn churn_run_converges_reconciles_and_is_deterministic() {
        let handle = asm_service::serve(
            "127.0.0.1:0",
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("in-process server starts");
        let addr = handle.addr().to_string();
        let config = ChurnConfig {
            markets: 2,
            mutations: 30,
            sizes: vec![16],
            ..ChurnConfig::default()
        };
        let report = run_churn(&addr, &config).expect("churn run completes");
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.oracle_failures, Vec::<String>::new());
        assert_eq!(report.markets_created, 2);
        assert_eq!(report.markets_dropped, 2);
        assert_eq!(report.ops_applied, 30);
        assert_eq!(report.per_mutation.len(), 30);
        assert_eq!(
            report.warm_resolves + report.cold_resolves,
            report.initial_resolves + 30
        );
        assert!(report.warm_resolves > 0, "churn exercises the warm path");
        // Warm starts must beat the cold baseline on the median.
        let (warm, cold) = (
            report.warm_median_rounds.expect("warm resolves happened"),
            report.cold_median_rounds.expect("cold baselines recorded"),
        );
        assert!(warm < cold, "warm median {warm} < cold median {cold}");
        // The server's market books balance against the generator's
        // (fresh server: no baseline).
        let fetch = |addr: &str| match crate::loadgen::control(addr, Op::Metrics) {
            Ok(Reply::Metrics(snapshot)) => snapshot,
            other => panic!("metrics fetch drew {other:?}"),
        };
        let snapshot = fetch(&addr);
        assert_eq!(
            verify_market_metrics(&report, None, &snapshot),
            Vec::<String>::new()
        );
        // A second run on the SAME server reconciles as a delta over
        // the first run's counters…
        let baseline = snapshot.market.clone();
        let rerun = run_churn(&addr, &config).expect("same-server rerun completes");
        assert_eq!(
            verify_market_metrics(&rerun, baseline.as_ref(), &fetch(&addr)),
            Vec::<String>::new()
        );
        // …and same seed on a fresh server: byte-identical normalized
        // report (the rerun above must agree too — the stream is a pure
        // function of the seed, not of server history).
        let handle2 = asm_service::serve("127.0.0.1:0", ServiceConfig::default())
            .expect("second in-process server starts");
        let report2 = run_churn(&handle2.addr().to_string(), &config).expect("rerun completes");
        assert_eq!(report.normalized(), report2.normalized());
        assert_eq!(report.normalized(), rerun.normalized());
        let back: ChurnReport = serde_json::from_str(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
        handle.shutdown();
        handle.wait();
        handle2.shutdown();
        handle2.wait();
    }
}
