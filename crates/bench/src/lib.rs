//! # asm-bench: experiment harness
//!
//! Reproduces every quantitative claim of Ostrovsky & Rosenbaum (PODC
//! 2015) as a table — the paper is theory-only, so its theorems and
//! lemmas *are* its tables and figures (see DESIGN.md §5 for the
//! experiment inventory and EXPERIMENTS.md for recorded results).
//!
//! Run a single experiment:
//!
//! ```text
//! cargo run --release -p asm-bench --bin t1_stability
//! ```
//!
//! Run the whole suite (append `--quick` for a smoke-test pass):
//!
//! ```text
//! cargo run --release -p asm-bench --bin all_experiments
//! ```
//!
//! Criterion wall-clock benchmarks live in `benches/`.

pub mod exp;
mod table;

pub use table::{f2, f4, Table};

/// Parses the common `--quick` flag from the process arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Prints a set of tables with blank-line separation.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{t}");
    }
}
