//! # asm-bench: experiment harness
//!
//! Reproduces every quantitative claim of Ostrovsky & Rosenbaum (PODC
//! 2015) as a table — the paper is theory-only, so its theorems and
//! lemmas *are* its tables and figures (see DESIGN.md §5 for the
//! experiment inventory and EXPERIMENTS.md for recorded results).
//!
//! Run a single experiment:
//!
//! ```text
//! cargo run --release -p asm-bench --bin t1_stability
//! ```
//!
//! Run the whole suite (append `--quick` for a smoke-test pass, `--par N`
//! to fan the sweep grids across `N` worker threads — the tables are
//! byte-identical for every `N`):
//!
//! ```text
//! cargo run --release -p asm-bench --bin all_experiments -- --quick --par 4
//! ```
//!
//! Every binary also writes a machine-readable `BENCH_sweep.json`
//! (per-cell wall-clock, rounds, messages, blocking fraction — schema in
//! `asm-runtime`); `--no-sweep` disables it and `--sweep-out PATH` moves
//! it. The CI perf gate (`perf_gate` binary) compares such a report
//! against the committed `results/bench_baseline.json`.
//!
//! Criterion wall-clock benchmarks live in `benches/`.

pub mod churn;
pub mod exp;
pub mod loadgen;
mod table;

use asm_runtime::{RunFlags, SweepReport};
use exp::ExpCtx;
use std::io::Write as _;

pub use table::{f2, f4, Table};

/// Parses the common `--quick` flag from the process arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Prints a set of tables with blank-line separation.
pub fn print_tables(tables: &[Table]) {
    print!("{}", render_tables(tables, &RunFlags::default()));
}

/// Renders tables into one buffer in the format `flags` selects
/// (fixed-width by default, `--markdown`, or `--csv`).
///
/// Output is buffered so a whole experiment is emitted in one atomic
/// write — concurrent runs (or a parallel shell pipeline) cannot
/// interleave half-printed tables.
pub fn render_tables(tables: &[Table], flags: &RunFlags) -> String {
    let mut out = String::new();
    for t in tables {
        if flags.markdown {
            out.push_str(&t.to_markdown());
            out.push('\n');
        } else if flags.csv {
            out.push_str(&format!("# {}\n{}\n", t.title(), t.to_csv()));
        } else {
            out.push_str(&format!("{t}\n"));
        }
    }
    out
}

/// Entry point shared by all 16 experiment binaries: parses [`RunFlags`]
/// from the command line, runs `ids` on the deterministic executor,
/// prints each experiment's tables through a buffered single write, and
/// emits the `BENCH_sweep.json` report.
///
/// # Panics
///
/// Panics if an id is not in the registry or stdout goes away mid-write.
pub fn run_binary(ids: &[&str]) {
    let flags = RunFlags::from_env();
    let report = run_experiments(ids, &flags);
    if let Some(path) = &flags.sweep_out {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| panic!("cannot write sweep report {path}: {e}"));
    }
}

/// Runs the named experiments under `flags` and returns the sweep
/// report; each experiment's rendered tables go to stdout in one write.
///
/// # Panics
///
/// Panics if an id is not in the registry.
pub fn run_experiments(ids: &[&str], flags: &RunFlags) -> SweepReport {
    let ctx = ExpCtx::new(flags.quick, flags.executor(), flags.stable_output);
    let mut report = SweepReport::new(ctx.exec.workers(), flags.quick);
    let (_, total_ms) = ExpCtx::time(|| {
        for id in ids {
            let experiment = exp::find(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
            let tables = (experiment.run)(&ctx);
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            lock.write_all(render_tables(&tables, flags).as_bytes())
                .and_then(|()| lock.flush())
                .expect("write experiment tables to stdout");
            report.extend(ctx.take_cells());
        }
    });
    report.total_wall_ms = total_ms;
    report
}
