//! The sweep-determinism contract: the experiment suite renders
//! byte-identical tables no matter how many executor workers run the
//! grids, and the recorded sweep cells carry the same coordinates and
//! measurements (modulo wall-clock, which is masked by design).

use asm_bench::exp::{run_all_ctx, ExpCtx, EXPERIMENTS};
use asm_bench::render_tables;
use asm_runtime::{Executor, RunFlags, SweepCell};

/// Runs the full quick suite at a worker count; returns the rendered
/// CSV (timing cells masked) and the recorded cells.
fn quick_run(workers: usize) -> (String, Vec<SweepCell>) {
    let ctx = ExpCtx::new(true, Executor::new(workers), true);
    let tables = run_all_ctx(&ctx);
    let flags = RunFlags {
        csv: true,
        stable_output: true,
        ..RunFlags::default()
    };
    let mut cells = ctx.take_cells();
    cells.sort_by(|a, b| {
        (&a.experiment, &a.family, a.n, a.eps.to_bits(), a.seed).cmp(&(
            &b.experiment,
            &b.family,
            b.n,
            b.eps.to_bits(),
            b.seed,
        ))
    });
    (render_tables(&tables, &flags), cells)
}

#[test]
fn quick_suite_is_byte_identical_across_1_2_8_workers() {
    let (csv1, cells1) = quick_run(1);
    for workers in [2, 8] {
        let (csv_n, cells_n) = quick_run(workers);
        assert_eq!(
            csv1, csv_n,
            "rendered tables differ between --par 1 and --par {workers}"
        );
        assert_eq!(cells1.len(), cells_n.len());
        for (a, b) in cells1.iter().zip(&cells_n) {
            assert_eq!(
                (&a.experiment, &a.family, a.n, a.eps.to_bits(), a.seed),
                (&b.experiment, &b.family, b.n, b.eps.to_bits(), b.seed),
                "cell coordinates depend on worker count"
            );
            assert_eq!(
                a.rounds, b.rounds,
                "{}: rounds depend on worker count",
                a.experiment
            );
            assert_eq!(
                a.messages, b.messages,
                "{}: messages depend on worker count",
                a.experiment
            );
            assert_eq!(
                a.blocking_fraction.to_bits(),
                b.blocking_fraction.to_bits(),
                "{}: blocking fraction depends on worker count",
                a.experiment
            );
        }
    }
}

#[test]
fn every_experiment_records_cells() {
    let ctx = ExpCtx::new(true, Executor::new(2), true);
    for experiment in EXPERIMENTS {
        let tables = (experiment.run)(&ctx);
        assert!(!tables.is_empty(), "{} returned no tables", experiment.id);
        let cells = ctx.take_cells();
        assert!(
            !cells.is_empty(),
            "{} recorded no sweep cells",
            experiment.id
        );
        assert!(
            cells.iter().all(|c| c.experiment == experiment.id),
            "{} mislabeled its cells",
            experiment.id
        );
    }
}
