//! End-to-end loadgen tests against in-process `asm-service` servers.
//!
//! The CI smoke job drives the same binary against a real `asm serve`
//! process with a 10k mix; these tests keep the contract honest at unit
//! scale: zero protocol errors, deterministic reports modulo wall-clock,
//! and loadgen/server bookkeeping that reconciles to the frame.

use asm_bench::loadgen::{control, run_mix, verify_metrics, MixConfig};
use asm_service::{serve, Op, Reply, ServiceConfig};

fn quick_mix(requests: u64, concurrency: u64) -> MixConfig {
    MixConfig {
        requests,
        concurrency,
        connections: 0,
        seed: 7,
        families: vec!["regular".to_string(), "complete".to_string()],
        sizes: vec![8, 16],
        algorithms: vec![
            "asm".to_string(),
            "gs".to_string(),
            "truncated-gs".to_string(),
        ],
        eps: 0.5,
        delta: 0.1,
        deadline_ms: 0,
        distinct_instances: 0,
        open_rate_rps: 0.0,
        batch: 0,
    }
}

fn default_server() -> (asm_service::ServerHandle, String) {
    let handle = serve("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn closed_loop_mix_completes_with_zero_errors() {
    let (handle, addr) = default_server();
    let report = run_mix(&addr, &quick_mix(60, 4)).unwrap();
    assert_eq!(report.sent, 60);
    assert_eq!(report.succeeded, 60);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.deadline_exceeded, 0);
    assert_eq!(report.solve_errors, 0);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.coords.iter().map(|c| c.solved).sum::<u64>(), 60);
    assert!(report.rounds_total() > 0);
    assert!(report.matched_total() > 0);
    handle.shutdown();
    handle.wait();
}

#[test]
fn same_seed_runs_produce_identical_normalized_reports() {
    let mix = quick_mix(40, 3);
    let run = || {
        let (handle, addr) = default_server();
        let report = run_mix(&addr, &mix).unwrap();
        handle.shutdown();
        handle.wait();
        report
    };
    let first = run();
    let second = run();
    assert_ne!(first.wall.total_ms, 0.0);
    assert_eq!(first.normalized(), second.normalized());
    // The sweep view is deterministic in everything but wall_ms.
    let mut a = first.to_sweep();
    let mut b = second.to_sweep();
    a.total_wall_ms = 0.0;
    b.total_wall_ms = 0.0;
    for cell in a.cells.iter_mut().chain(b.cells.iter_mut()) {
        cell.wall_ms = 0.0;
    }
    assert_eq!(a.cells, b.cells);
}

#[test]
fn loadgen_totals_reconcile_with_server_metrics() {
    let (handle, addr) = default_server();
    let report = run_mix(&addr, &quick_mix(50, 4)).unwrap();
    let Reply::Metrics(snapshot) = control(&addr, Op::Metrics).unwrap() else {
        panic!("metrics request must draw a metrics reply");
    };
    let mismatches = verify_metrics(&report, &snapshot);
    assert!(mismatches.is_empty(), "{mismatches:?}");
    handle.shutdown();
    handle.wait();
}

#[test]
fn zero_capacity_server_rejects_the_whole_mix_and_books_balance() {
    let handle = serve(
        "127.0.0.1:0",
        ServiceConfig {
            queue_capacity: 0,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let report = run_mix(&addr, &quick_mix(20, 2)).unwrap();
    assert_eq!(report.rejected, 20);
    assert_eq!(report.succeeded, 0);
    assert_eq!(report.protocol_errors, 0);
    let Reply::Metrics(snapshot) = control(&addr, Op::Metrics).unwrap() else {
        panic!("metrics request must draw a metrics reply");
    };
    assert!(verify_metrics(&report, &snapshot).is_empty());
    handle.shutdown();
    handle.wait();
}

#[test]
fn repeated_instances_hit_the_cache_on_a_single_connection() {
    let (handle, addr) = default_server();
    let mix = MixConfig {
        distinct_instances: 5,
        ..quick_mix(25, 1)
    };
    let report = run_mix(&addr, &mix).unwrap();
    assert_eq!(report.succeeded, 25);
    // One connection ⇒ strictly sequential ⇒ only the 5 first-of-identity
    // solves can miss.
    assert_eq!(report.wall.cached_responses, 20);
    handle.shutdown();
    handle.wait();
}

#[test]
fn open_loop_paces_and_still_collects_every_reply() {
    let (handle, addr) = default_server();
    let mix = MixConfig {
        open_rate_rps: 2000.0,
        ..quick_mix(30, 3)
    };
    let report = run_mix(&addr, &mix).unwrap();
    assert_eq!(report.succeeded + report.rejected, 30);
    assert_eq!(report.protocol_errors, 0);
    handle.shutdown();
    handle.wait();
}

#[test]
fn batched_mix_matches_the_single_frame_mix_and_reconciles() {
    let sharded = || {
        serve(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 4,
                shards: 4,
                ..ServiceConfig::default()
            },
        )
        .expect("bind")
    };
    // Same mix, batch sizes 1 (singles), 4, and 7 (last frame is a
    // partial batch): the normalized reports must agree exactly, and the
    // server's books — aggregate and per-shard — must reconcile each time.
    let mut normalized = Vec::new();
    for batch in [0u64, 4, 7] {
        let handle = sharded();
        let addr = handle.addr().to_string();
        let mix = MixConfig {
            batch,
            ..quick_mix(30, 3)
        };
        let report = run_mix(&addr, &mix).unwrap();
        assert_eq!(report.succeeded, 30, "batch={batch}");
        assert_eq!(report.protocol_errors, 0, "batch={batch}");
        assert_eq!(report.shards, 4, "batch={batch}");
        let Reply::Metrics(snapshot) = control(&addr, Op::Metrics).unwrap() else {
            panic!("metrics request must draw a metrics reply");
        };
        assert_eq!(snapshot.shards.len(), 4, "batch={batch}");
        let mismatches = verify_metrics(&report, &snapshot);
        assert!(mismatches.is_empty(), "batch={batch}: {mismatches:?}");
        handle.shutdown();
        handle.wait();
        // Zero the mix's batch knob so reports are comparable across modes.
        let mut norm = report.normalized();
        norm.mix.batch = 0;
        normalized.push(norm);
    }
    assert_eq!(normalized[0], normalized[1]);
    assert_eq!(normalized[0], normalized[2]);
}

#[test]
fn connection_fanout_drives_more_sockets_than_threads() {
    let handle = serve(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            shards: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    // 24 sockets from 3 threads: every socket keeps one frame in
    // flight, and the tallies still sum and reconcile exactly.
    let mix = MixConfig {
        connections: 24,
        ..quick_mix(96, 3)
    };
    let report = run_mix(&addr, &mix).unwrap();
    assert_eq!(report.succeeded, 96);
    assert_eq!(report.protocol_errors, 0);
    let Reply::Metrics(snapshot) = control(&addr, Op::Metrics).unwrap() else {
        panic!("metrics request must draw a metrics reply");
    };
    let mismatches = verify_metrics(&report, &snapshot);
    assert!(mismatches.is_empty(), "{mismatches:?}");
    let counters = std::sync::Arc::clone(handle.reactor_counters());
    // 24 mix sockets + the health probe + the metrics fetch.
    assert_eq!(counters.get(&counters.accepted), 26);
    handle.shutdown();
    handle.wait();
}

#[test]
fn graceful_shutdown_after_a_mix_drains_cleanly() {
    let (handle, addr) = default_server();
    let report = run_mix(&addr, &quick_mix(16, 2)).unwrap();
    assert_eq!(report.succeeded, 16);
    let Reply::ShuttingDown = control(&addr, Op::Shutdown).unwrap() else {
        panic!("shutdown must be acknowledged");
    };
    // 16 solves + run_mix's health probe + 1 shutdown frame, all
    // answered before wait() returns.
    let served = handle.wait();
    assert_eq!(served, 18);
}
