//! Concurrency soak: 512 simultaneous sockets against a 4-shard server.
//!
//! Gated behind `#[ignore]` locally (it opens 512 sockets and pushes a
//! couple thousand solves); CI runs it explicitly with `-- --ignored`.
//! The assertions are the service's production contract at scale: zero
//! errors of any kind, loadgen and server books that reconcile to the
//! frame (aggregate and per-shard), and a same-seed report that is
//! deterministic modulo the quarantined wall-clock block.

use asm_bench::loadgen::{control, run_mix, verify_metrics, MixConfig};
use asm_service::{serve, Op, Reply, ServiceConfig};

fn soak_mix() -> MixConfig {
    MixConfig {
        requests: 2048,
        concurrency: 8,
        connections: 512,
        seed: 11,
        families: vec!["regular".to_string(), "complete".to_string()],
        sizes: vec![8, 16],
        algorithms: vec![
            "asm".to_string(),
            "gs".to_string(),
            "truncated-gs".to_string(),
        ],
        eps: 0.5,
        delta: 0.1,
        deadline_ms: 0,
        distinct_instances: 64,
        open_rate_rps: 0.0,
        batch: 0,
    }
}

fn soak_server() -> (asm_service::ServerHandle, String) {
    let handle = serve(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 8,
            shards: 4,
            queue_capacity: 4096,
            ..ServiceConfig::default()
        },
    )
    .expect("bind soak server");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
#[ignore = "512-socket soak; run explicitly (CI does) with -- --ignored"]
fn five_hundred_twelve_connections_zero_errors_books_reconcile() {
    let (handle, addr) = soak_server();
    let report = run_mix(&addr, &soak_mix()).unwrap();

    assert_eq!(report.sent, 2048);
    assert_eq!(report.succeeded, 2048, "every request must solve");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.deadline_exceeded, 0);
    assert_eq!(report.solve_errors, 0);
    assert_eq!(report.protocol_errors, 0);

    let Reply::Metrics(snapshot) = control(&addr, Op::Metrics).unwrap() else {
        panic!("metrics request must draw a metrics reply");
    };
    assert_eq!(snapshot.shards.len(), 4);
    let mismatches = verify_metrics(&report, &snapshot);
    assert!(mismatches.is_empty(), "books diverged: {mismatches:?}");

    let counters = std::sync::Arc::clone(handle.reactor_counters());
    // 512 mix sockets + the health probe + the metrics fetch.
    assert_eq!(counters.get(&counters.accepted), 514);
    assert_eq!(
        counters.get(&counters.frames),
        2048 + 2,
        "every frame framed exactly once"
    );

    handle.shutdown();
    // 2048 solves + health probe + metrics fetch, all flushed.
    assert_eq!(handle.wait(), 2048 + 2);
}

#[test]
#[ignore = "512-socket soak; run explicitly (CI does) with -- --ignored"]
fn soak_reports_are_deterministic_for_the_same_seed() {
    let run = || {
        let (handle, addr) = soak_server();
        let report = run_mix(&addr, &soak_mix()).unwrap();
        handle.shutdown();
        handle.wait();
        report
    };
    let first = run();
    let second = run();
    assert_ne!(first.wall.total_ms, 0.0);
    assert_eq!(
        first.normalized(),
        second.normalized(),
        "same-seed soak runs must agree exactly outside the wall block"
    );
}
