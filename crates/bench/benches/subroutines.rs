//! Criterion benchmarks for the maximal-matching subroutines (experiments
//! F1–F2) across backend and graph size.

use asm_congest::{NodeId, SplitRng};
use asm_maximal::{
    amm, bipartite_proposal, det_greedy, greedy_maximal, hkp_oracle, israeli_itai, panconesi_rizzi,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn random_bipartite(n: u32, d: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SplitRng::new(seed);
    (0..n)
        .flat_map(|u| {
            (0..d)
                .map(|_| (u, n + rng.next_range(n as usize) as u32))
                .collect::<Vec<_>>()
        })
        .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
        .collect()
}

fn f1_ii_decay(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_ii_decay");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [256u32, 1024, 4096] {
        let edges = random_bipartite(n, 4, 11);
        let rng = SplitRng::new(5);
        g.bench_with_input(BenchmarkId::new("israeli_itai_full", n), &edges, |b, e| {
            b.iter(|| israeli_itai(black_box(e), 10_000, &rng, 0))
        });
        g.bench_with_input(BenchmarkId::new("det_greedy", n), &edges, |b, e| {
            b.iter(|| det_greedy(black_box(e)))
        });
        g.bench_with_input(BenchmarkId::new("sequential", n), &edges, |b, e| {
            b.iter(|| greedy_maximal(black_box(e)))
        });
        g.bench_with_input(BenchmarkId::new("hkp_oracle", n), &edges, |b, e| {
            b.iter(|| hkp_oracle(2 * n as usize, black_box(e)))
        });
        g.bench_with_input(BenchmarkId::new("panconesi_rizzi", n), &edges, |b, e| {
            b.iter(|| panconesi_rizzi(black_box(e)))
        });
        g.bench_with_input(BenchmarkId::new("bipartite_proposal", n), &edges, |b, e| {
            b.iter(|| bipartite_proposal(black_box(e), |v| v.raw() < n))
        });
    }
    g.finish();
}

fn f2_amm(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_amm");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let edges = random_bipartite(2048, 4, 13);
    let rng = SplitRng::new(7);
    for eta in [0.1, 0.01] {
        g.bench_with_input(BenchmarkId::new("amm", eta), &eta, |b, &eta| {
            b.iter(|| amm(black_box(&edges), eta, 0.1, 0.6, &rng, 0))
        });
    }
    g.finish();
}

criterion_group!(benches, f1_ii_decay, f2_amm);
criterion_main!(benches);
