//! Criterion wall-clock benchmarks for the main algorithms — one group
//! per headline experiment (T1–T4). These measure simulation cost; the
//! round-complexity results themselves come from the table binaries.

use asm_core::{almost_regular_asm, asm, rand_asm, AlmostRegularParams, AsmConfig, RandAsmParams};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn t1_stability(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_stability");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for eps in [1.0, 0.5, 0.25] {
        let inst = generators::complete(64, 1);
        g.bench_with_input(BenchmarkId::new("asm_complete64", eps), &eps, |b, &eps| {
            b.iter(|| asm(black_box(&inst), &AsmConfig::new(eps)).unwrap())
        });
    }
    g.finish();
}

fn t2_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_rounds");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 128, 256] {
        let inst = generators::complete(n, 2);
        g.bench_with_input(BenchmarkId::new("asm_hkp", n), &inst, |b, inst| {
            b.iter(|| asm(black_box(inst), &AsmConfig::new(1.0)).unwrap())
        });
        let greedy = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        g.bench_with_input(BenchmarkId::new("asm_det_greedy", n), &inst, |b, inst| {
            b.iter(|| asm(black_box(inst), &greedy).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("distributed_gs", n), &inst, |b, inst| {
            b.iter(|| asm_core::baselines::distributed_gs(black_box(inst)))
        });
    }
    g.finish();
}

fn t3_randasm(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_randasm");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 256] {
        let inst = generators::erdos_renyi(n, n, 0.25, 3);
        g.bench_with_input(BenchmarkId::new("rand_asm", n), &inst, |b, inst| {
            b.iter(|| {
                rand_asm(black_box(inst), &RandAsmParams::new(1.0, 0.1).with_seed(7)).unwrap()
            })
        });
    }
    g.finish();
}

fn t4_almost_regular(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_almost_regular");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 256, 1024] {
        let inst = generators::regular(n, 8, 4);
        g.bench_with_input(
            BenchmarkId::new("almost_regular_asm", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    almost_regular_asm(
                        black_box(inst),
                        &AlmostRegularParams::new(1.0, 0.1).with_seed(9),
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    t1_stability,
    t2_rounds,
    t3_randasm,
    t4_almost_regular
);
criterion_main!(benches);
