//! Criterion benchmarks for the execution engines and configuration
//! ablations (T5–T6): fast vector engine vs message-passing CONGEST
//! engine, and the cost of each matcher backend.

use asm_core::congest::asm_congest;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_maximal::MatcherBackend;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn t5_local_work(c: &mut Criterion) {
    let mut g = c.benchmark_group("t5_local_work");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [32usize, 64, 128] {
        let inst = generators::complete(n, 1);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        g.bench_with_input(BenchmarkId::new("fast_engine", n), &inst, |b, inst| {
            b.iter(|| asm(black_box(inst), &config).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("congest_engine", n), &inst, |b, inst| {
            b.iter(|| asm_congest(black_box(inst), &config).unwrap())
        });
    }
    g.finish();
}

fn t6_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("t6_ablations");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let inst = generators::erdos_renyi(96, 96, 0.3, 3);
    for (name, backend) in [
        ("hkp_oracle", MatcherBackend::HkpOracle),
        ("det_greedy", MatcherBackend::DetGreedy),
        ("bipartite_proposal", MatcherBackend::BipartiteProposal),
        ("panconesi_rizzi", MatcherBackend::PanconesiRizzi),
        (
            "israeli_itai_32",
            MatcherBackend::IsraeliItai { max_iterations: 32 },
        ),
    ] {
        let config = AsmConfig::new(0.5).with_backend(backend);
        g.bench_function(BenchmarkId::new("backend", name), |b| {
            b.iter(|| asm(black_box(&inst), &config).unwrap())
        });
    }
    for k in [4usize, 16, 64] {
        let config = AsmConfig {
            quantiles: Some(k),
            ..AsmConfig::new(0.5)
        };
        g.bench_function(BenchmarkId::new("quantiles", k), |b| {
            b.iter(|| asm(black_box(&inst), &config).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, t5_local_work, t6_ablations);
criterion_main!(benches);
