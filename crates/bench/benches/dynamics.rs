//! Criterion benchmarks for the convergence-dynamics experiments (F3–F6):
//! instrumented ASM runs, stability audits, and the truncated-GS
//! baseline.

use asm_core::baselines::truncated_gs;
use asm_core::{asm, AsmConfig};
use asm_instance::generators;
use asm_matching::{blocking_pairs, eps_blocking_pairs, StabilityReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn f3_inner_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_inner_loop");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let inst = generators::complete(128, 3);
    g.bench_function("asm_with_snapshots_complete128", |b| {
        b.iter(|| asm(black_box(&inst), &AsmConfig::new(1.0)).unwrap())
    });
    g.finish();
}

fn f4_good_men(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_good_men");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let inst = generators::erdos_renyi(128, 128, 0.3, 5);
    let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
    g.bench_function("blocking_pair_audit", |b| {
        b.iter(|| blocking_pairs(black_box(&inst), black_box(&report.matching)))
    });
    g.bench_function("eps_blocking_audit", |b| {
        b.iter(|| eps_blocking_pairs(black_box(&inst), black_box(&report.matching), 0.25))
    });
    g.finish();
}

fn f5_eps_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("f5_eps_blocking");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let inst = generators::zipf(128, 12, 1.2, 7);
    let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
    g.bench_function("stability_report", |b| {
        b.iter(|| StabilityReport::analyze(black_box(&inst), black_box(&report.matching)))
    });
    g.finish();
}

fn f6_truncated_gs(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_truncated_gs");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for d in [4usize, 16] {
        let inst = generators::regular(256, d, 9);
        g.bench_with_input(
            BenchmarkId::new("truncated_gs_8cycles", d),
            &inst,
            |b, inst| b.iter(|| truncated_gs(black_box(inst), 8)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    f3_inner_loop,
    f4_good_men,
    f5_eps_blocking,
    f6_truncated_gs
);
criterion_main!(benches);
