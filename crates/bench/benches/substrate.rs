//! Criterion benchmarks for the substrate crates: instance generation,
//! stability auditing, and raw CONGEST simulator throughput. These keep
//! the supporting machinery honest — a slow audit or simulator would
//! bottleneck every experiment above it.

use asm_congest::{Envelope, Network, NodeId, Outbox, Payload, Process};
use asm_instance::generators;
use asm_matching::{blocking_pairs, man_optimal_stable, StabilityReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn generators_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_generators");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [128usize, 512] {
        g.bench_with_input(BenchmarkId::new("complete", n), &n, |b, &n| {
            b.iter(|| generators::complete(black_box(n), 7))
        });
        g.bench_with_input(BenchmarkId::new("regular_d8", n), &n, |b, &n| {
            b.iter(|| generators::regular(black_box(n), 8, 7))
        });
        g.bench_with_input(BenchmarkId::new("zipf_d8", n), &n, |b, &n| {
            b.iter(|| generators::zipf(black_box(n), 8, 1.2, 7))
        });
        g.bench_with_input(BenchmarkId::new("geometric_d8", n), &n, |b, &n| {
            b.iter(|| generators::geometric(black_box(n), 8, 7))
        });
    }
    g.finish();
}

fn analysis_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_analysis");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [128usize, 512] {
        let inst = generators::complete(n, 3);
        let gs = man_optimal_stable(&inst);
        g.bench_with_input(BenchmarkId::new("gale_shapley", n), &inst, |b, inst| {
            b.iter(|| man_optimal_stable(black_box(inst)))
        });
        g.bench_with_input(
            BenchmarkId::new("blocking_pairs", n),
            &(&inst, &gs.matching),
            |b, (inst, m)| b.iter(|| blocking_pairs(black_box(inst), black_box(m))),
        );
        g.bench_with_input(
            BenchmarkId::new("stability_report", n),
            &(&inst, &gs.matching),
            |b, (inst, m)| b.iter(|| StabilityReport::analyze(black_box(inst), black_box(m))),
        );
    }
    g.finish();
}

/// A chatter protocol: every node echoes every received message once, for
/// `ttl` generations — pure simulator overhead measurement.
struct Chatter {
    neighbors: Vec<NodeId>,
    start: bool,
}

#[derive(Clone, Debug)]
struct Ttl(u8);
impl Payload for Ttl {
    fn bits(&self) -> usize {
        8
    }
}

impl Process for Chatter {
    type Msg = Ttl;
    fn on_round(&mut self, inbox: &[Envelope<Ttl>], outbox: &mut Outbox<Ttl>) {
        if self.start {
            self.start = false;
            for &nb in &self.neighbors {
                outbox.send(nb, Ttl(6));
            }
        }
        for e in inbox {
            if e.payload.0 > 0 {
                outbox.send(e.src, Ttl(e.payload.0 - 1));
            }
        }
    }
}

fn simulator_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_simulator");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 256] {
        let inst = generators::regular(n, 8, 5);
        let topo = inst.topology();
        g.bench_with_input(BenchmarkId::new("echo_storm", n), &topo, |b, topo| {
            b.iter(|| {
                let procs: Vec<Chatter> = (0..topo.num_nodes())
                    .map(|i| Chatter {
                        neighbors: topo.neighbors(NodeId::new(i as u32)).to_vec(),
                        start: i == 0,
                    })
                    .collect();
                let mut net = Network::new(topo.clone(), procs).unwrap();
                net.run_until_quiescent(100).unwrap();
                black_box(net.stats().messages)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, generators_bench, analysis_bench, simulator_bench);
criterion_main!(benches);
