//! Seeded, deterministic transport fault injection.
//!
//! The orchestrator routes every frame of every link through a
//! [`FaultInjector`] pair (one per direction). Given the same
//! [`FaultPlan`] and the same sequence of frame operations, the
//! injector makes identical drop/duplicate/delay decisions — the
//! randomness is a [`SplitRng`] keyed by `(seed, proc, direction)` and
//! advanced once per frame, never by wall clock.
//!
//! Faults are *transport-level only*: the protocol's at-most-once
//! machinery (orchestrator resend on timeout, node cached-reply replay)
//! makes them invisible to the player state machines, so even heavily
//! faulted runs must produce byte-identical results — the fault battery
//! in `tests/faults.rs` asserts exactly that.

use asm_congest::SplitRng;
use serde::{Deserialize, Serialize};

/// A one-link outage window: every frame in either direction whose
/// per-direction operation index falls inside the window is dropped.
/// The link heals when the window ends — the orchestrator's resend
/// machinery then reconverges the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// The partitioned process.
    pub proc_index: u32,
    /// First frame operation of the outage (per direction).
    pub from_op: u64,
    /// Number of frame operations the outage lasts.
    pub ops: u64,
}

/// Kill a node process with `SIGKILL` immediately before the
/// orchestrator sends the frame with this sequence number to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// The victim process.
    pub proc_index: u32,
    /// The sequence number whose send triggers the kill.
    pub at_seq: u64,
}

/// A deterministic transport fault schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Randomness seed; same plan + same frame sequence = same faults.
    pub seed: u64,
    /// Per-frame drop probability.
    pub drop_p: f64,
    /// Per-frame duplication probability (the copy is delivered
    /// immediately after the original).
    pub dup_p: f64,
    /// Per-frame delay probability (the frame is held back and released
    /// after later frames, which also reorders).
    pub delay_p: f64,
    /// Maximum delay, in subsequent frame operations on the same
    /// direction.
    pub max_delay: u64,
    /// Scheduled link outages.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled node kill.
    pub kill: Option<KillSpec>,
}

impl FaultPlan {
    /// The clean transport: no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            partitions: Vec::new(),
            kill: None,
        }
    }

    /// Whether this plan injects anything.
    pub fn is_quiet(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.delay_p == 0.0
            && self.partitions.is_empty()
            && self.kill.is_none()
    }

    /// A seeded lossy transport: drop each frame with probability `p`.
    pub fn lossy(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            drop_p: p,
            ..FaultPlan::none()
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// What a [`FaultInjector`] did to the frames routed through it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedCounts {
    /// Frames silently discarded (probabilistic drops + partitions).
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Frames held back past later frames.
    pub delayed: u64,
}

/// One direction of one link's fault machinery.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitRng,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    max_delay: u64,
    windows: Vec<(u64, u64)>,
    op: u64,
    held: Vec<(u64, String)>,
    counts: InjectedCounts,
}

impl FaultInjector {
    /// Builds the injector for `(plan, proc_index, direction)`;
    /// `direction` is 0 for orchestrator-to-node, 1 for the reverse.
    pub fn new(plan: &FaultPlan, proc_index: u32, direction: u64) -> Self {
        FaultInjector {
            rng: SplitRng::new(plan.seed).split(u64::from(proc_index), direction),
            drop_p: plan.drop_p,
            dup_p: plan.dup_p,
            delay_p: plan.delay_p,
            max_delay: plan.max_delay.max(1),
            windows: plan
                .partitions
                .iter()
                .filter(|w| w.proc_index == proc_index)
                .map(|w| (w.from_op, w.from_op.saturating_add(w.ops)))
                .collect(),
            op: 0,
            held: Vec::new(),
            counts: InjectedCounts::default(),
        }
    }

    /// A no-fault injector (used when no plan is configured).
    pub fn quiet() -> Self {
        FaultInjector::new(&FaultPlan::none(), 0, 0)
    }

    /// Routes one frame through the injector, appending every frame due
    /// for delivery (held frames whose release op has passed, then this
    /// frame's surviving copies) to `out` in delivery order.
    pub fn admit(&mut self, line: String, out: &mut Vec<String>) {
        self.op += 1;
        self.release_due(out);
        if self
            .windows
            .iter()
            .any(|&(a, b)| self.op > a && self.op <= b)
        {
            self.counts.dropped += 1;
            return;
        }
        if self.chance(self.drop_p) {
            self.counts.dropped += 1;
            return;
        }
        let copies = if self.chance(self.dup_p) {
            self.counts.duplicated += 1;
            2
        } else {
            1
        };
        if self.chance(self.delay_p) {
            self.counts.delayed += 1;
            let release = self.op + 1 + self.rng.next_u64() % self.max_delay;
            for _ in 0..copies {
                self.held.push((release, line.clone()));
            }
            return;
        }
        for _ in 0..copies {
            out.push(line.clone());
        }
    }

    /// Appends held frames whose release op has passed to `out`.
    pub fn release_due(&mut self, out: &mut Vec<String>) {
        let op = self.op;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= op {
                out.push(self.held.remove(i).1);
            } else {
                i += 1;
            }
        }
    }

    /// Frames still held back.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Advances the op clock without a frame (lets held frames drain
    /// when traffic stops).
    pub fn tick(&mut self, out: &mut Vec<String>) {
        self.op += 1;
        self.release_due(out);
    }

    /// What this injector has done so far.
    pub fn counts(&self) -> InjectedCounts {
        self.counts
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // 53 random bits → a uniform f64 in [0, 1).
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut FaultInjector, frames: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        for f in frames {
            inj.admit((*f).to_string(), &mut out);
        }
        // Drain anything still held.
        while inj.held() > 0 {
            inj.tick(&mut out);
        }
        out
    }

    #[test]
    fn quiet_injector_is_the_identity() {
        let mut inj = FaultInjector::quiet();
        let frames = ["a", "b", "c"];
        assert_eq!(drain(&mut inj, &frames), ["a", "b", "c"]);
        assert_eq!(inj.counts(), InjectedCounts::default());
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan {
            seed: 42,
            drop_p: 0.3,
            dup_p: 0.3,
            delay_p: 0.3,
            max_delay: 3,
            ..FaultPlan::none()
        };
        let frames: Vec<String> = (0..100).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = frames.iter().map(String::as_str).collect();
        let a = drain(&mut FaultInjector::new(&plan, 2, 0), &refs);
        let b = drain(&mut FaultInjector::new(&plan, 2, 0), &refs);
        assert_eq!(a, b);
        let other_link = drain(&mut FaultInjector::new(&plan, 3, 0), &refs);
        assert_ne!(a, other_link, "links draw independent streams");
    }

    #[test]
    fn drops_duplicates_and_delays_are_counted() {
        let plan = FaultPlan {
            seed: 7,
            drop_p: 0.25,
            dup_p: 0.25,
            delay_p: 0.25,
            max_delay: 4,
            ..FaultPlan::none()
        };
        let frames: Vec<String> = (0..200).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = frames.iter().map(String::as_str).collect();
        let mut inj = FaultInjector::new(&plan, 0, 1);
        let out = drain(&mut inj, &refs);
        let c = inj.counts();
        assert!(c.dropped > 0 && c.duplicated > 0 && c.delayed > 0, "{c:?}");
        // Conservation: every admitted frame is delivered once, plus one
        // copy per duplication, minus dropped ones (drop beats dup).
        assert_eq!(
            out.len() as u64,
            200 - c.dropped + c.duplicated - dup_dropped(&out, c)
        );
        // Delays reorder: output is not the identity permutation.
        let idx: Vec<usize> = out
            .iter()
            .map(|f| f[1..].parse::<usize>().unwrap())
            .collect();
        assert!(idx.windows(2).any(|w| w[0] > w[1]), "no reordering seen");
    }

    /// Duplicated frames that were then delayed-and-dropped never exist
    /// in this model (drop is decided before dup), so the correction is
    /// always zero; spelled out for the conservation equation above.
    fn dup_dropped(_out: &[String], _c: InjectedCounts) -> u64 {
        0
    }

    #[test]
    fn partition_window_drops_everything_then_heals() {
        let plan = FaultPlan {
            seed: 1,
            partitions: vec![PartitionWindow {
                proc_index: 5,
                from_op: 2,
                ops: 3,
            }],
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan, 5, 0);
        let frames = ["a", "b", "c", "d", "e", "f", "g"];
        // Ops 3, 4, 5 (1-indexed) fall inside the window.
        assert_eq!(drain(&mut inj, &frames), ["a", "b", "f", "g"]);
        assert_eq!(inj.counts().dropped, 3);
        // The same window does not apply to other links.
        let mut other = FaultInjector::new(&plan, 4, 0);
        assert_eq!(drain(&mut other, &frames).len(), 7);
    }
}
