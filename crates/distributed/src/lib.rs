//! Multi-process CONGEST execution for the almost-stable-matching
//! engine.
//!
//! The in-process engine (`asm_core::congest`) simulates the CONGEST
//! model inside one address space. This crate runs the *same* algorithm
//! across real OS processes: each `asm-node` process hosts a contiguous
//! range of players behind [`asm_congest::Process::on_round`], and the
//! orchestrator partitions an instance across N such processes, runs
//! the synchronous round loop with a per-round barrier, and collects
//! the final matching.
//!
//! Three properties anchor the design:
//!
//! - **Same driver loop.** The orchestrator implements
//!   [`asm_congest::RoundDriver`], so
//!   [`asm_core::congest::run_plan_with_driver`] sequences distributed
//!   runs exactly as it sequences in-process ones — same rounds, same
//!   control barriers, same early exits.
//! - **Byte-identical results.** A fault-free distributed run produces
//!   the same [`asm_core::congest::CongestReport`] — matching, round
//!   count, message count, bit count — as the in-process engine on the
//!   same instance and plan.
//! - **Fault tolerance without divergence.** A seeded [`FaultPlan`]
//!   proxy drops, delays, reorders, and duplicates frames and severs
//!   and heals links mid-run; the protocol's at-most-once machinery
//!   (timeout-resend plus cached-reply replay) keeps even faulted runs
//!   byte-identical, which `tests/faults.rs` asserts.
//!
//! The wire protocol is newline-delimited JSON, documented in
//! `docs/PROTOCOLS.md` and pinned byte-for-byte by the golden corpus in
//! `cases/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod node;
pub mod orchestrator;
pub mod protocol;

pub use fault::{FaultInjector, FaultPlan, InjectedCounts, KillSpec, PartitionWindow};
pub use node::{run_node, NodeError, NodeRunner, MAX_FRAME};
pub use orchestrator::{
    partition_ranges, run_distributed, sibling_node_bin, DistDriver, DistError, DistOptions,
    DistRunReport, LinkReport, TransportReport,
};
pub use protocol::{FromNode, FromNodeFrame, InitBody, ToNode, ToNodeFrame, DIST_SCHEMA};
