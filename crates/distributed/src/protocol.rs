//! The node wire protocol: newline-delimited JSON frames over TCP.
//!
//! One orchestrator drives N node processes in lockstep. Every frame in
//! either direction is one JSON object on one line, shaped
//! `{"frame": "<tag>", "seq": <u64>, "body": {...}}` (the `body` key is
//! omitted for body-less frames). Framing is [`asm_service::framing`] —
//! the same incremental newline framer the service reactor uses — so
//! both ends of every socket in the workspace frame bytes identically.
//!
//! The `seq` field carries the at-most-once machinery that makes the
//! protocol converge over a faulty transport: the orchestrator sends
//! strictly increasing sequence numbers (starting at 1) and never
//! advances until it has the matching reply, while the node caches its
//! last reply and resends it verbatim when a duplicate of the last
//! sequence number arrives. Frames older than the last processed
//! sequence number are stale duplicates and are dropped; a gap (a
//! sequence number more than one ahead) is unreachable under lockstep
//! and draws a `nack`.
//!
//! The full specification lives in `docs/PROTOCOLS.md`; the golden
//! corpus in `crates/distributed/cases/` pins the encoding byte for
//! byte.

use asm_congest::Envelope;
use asm_core::congest::{AsmCtl, AsmMsg, AsmSummary, PlayerFinal};
use asm_core::AsmConfig;
use asm_instance::Instance;
use serde::{content_get, Content, Deserialize, Serialize};

/// Protocol schema version, bumped on any wire-visible change.
pub const DIST_SCHEMA: u64 = 1;

/// `init` body: everything a node needs to host its player range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InitBody {
    /// Wire schema the orchestrator speaks ([`DIST_SCHEMA`]).
    pub schema: u64,
    /// This node's process index (assigned in accept order).
    pub proc_index: u32,
    /// First node id this process hosts (inclusive).
    pub lo: u32,
    /// One past the last node id this process hosts.
    pub hi: u32,
    /// The full problem instance (every node knows the topology; only
    /// `lo..hi` players are instantiated).
    pub instance: Instance,
    /// The validated algorithm configuration.
    pub config: AsmConfig,
}

/// Orchestrator-to-node frame payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum ToNode {
    /// Session start: build the player range.
    Init(Box<InitBody>),
    /// Between-rounds control barrier: apply `ops`, report a summary.
    RoundBarrier {
        /// Control operations, applied in order to every hosted player.
        ops: Vec<AsmCtl>,
    },
    /// One synchronous round: deliver `msgs`, step every player, reply
    /// with the messages they sent.
    RoundMsgs {
        /// This round's deliveries for players in `lo..hi`, in global
        /// staging order.
        msgs: Vec<Envelope<AsmMsg>>,
    },
    /// Collect final per-player state and transport counters.
    Snapshot,
    /// Terminate the node process.
    Halt,
}

/// Node-to-orchestrator frame payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum FromNode {
    /// `init` acknowledgement.
    Hello {
        /// Echoed process index.
        proc_index: u32,
        /// Number of players instantiated.
        players: u64,
    },
    /// `round_barrier` acknowledgement with the partition's summary.
    BarrierOk {
        /// Summary of the hosted players after applying the ops.
        summary: AsmSummary,
    },
    /// `round_msgs` acknowledgement.
    RoundDone {
        /// Messages the hosted players sent this round, in node-id
        /// order.
        sent: Vec<Envelope<AsmMsg>>,
        /// Summary of the hosted players after the round.
        summary: AsmSummary,
    },
    /// `snapshot` reply.
    SnapshotData {
        /// Final state of the hosted players, in node-id order.
        finals: Vec<PlayerFinal>,
        /// Duplicate frames answered by resending the cached reply.
        resends: u64,
        /// Stale (older-than-last) duplicate frames dropped.
        stale: u64,
    },
    /// `halt` acknowledgement; the node exits after sending it.
    Halted,
    /// The received sequence number is ahead of the session (protocol
    /// violation under lockstep).
    Nack {
        /// The sequence number the node expected next.
        expected: u64,
    },
    /// Fatal node-side failure.
    NodeError {
        /// Human-readable cause.
        detail: String,
    },
}

/// One orchestrator-to-node frame: a sequence number plus payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ToNodeFrame {
    /// Lockstep sequence number (strictly increasing from 1).
    pub seq: u64,
    /// The payload.
    pub body: ToNode,
}

/// One node-to-orchestrator frame: the request's sequence number plus
/// payload.
#[derive(Clone, Debug, PartialEq)]
pub struct FromNodeFrame {
    /// The sequence number of the frame being answered.
    pub seq: u64,
    /// The payload.
    pub body: FromNode,
}

fn frame_content(tag: &str, seq: u64, body: Option<Content>) -> Content {
    let mut map = vec![
        ("frame".to_string(), Content::Str(tag.to_string())),
        ("seq".to_string(), seq.to_content()),
    ];
    if let Some(b) = body {
        map.push(("body".to_string(), b));
    }
    Content::Map(map)
}

fn frame_parts(content: &Content) -> Result<(&str, u64, Option<&Content>), serde::Error> {
    let map = content
        .as_map()
        .ok_or_else(|| serde::Error::custom("expected a frame object"))?;
    let tag = match content_get(map, "frame") {
        Some(Content::Str(s)) => s.as_str(),
        _ => return Err(serde::Error::custom("missing string field `frame`")),
    };
    let seq = match content_get(map, "seq") {
        Some(c) => u64::from_content(c)?,
        None => return Err(serde::Error::custom("missing field `seq`")),
    };
    Ok((tag, seq, content_get(map, "body")))
}

fn require_body<'a>(tag: &str, body: Option<&'a Content>) -> Result<&'a Content, serde::Error> {
    body.ok_or_else(|| serde::Error::custom(format!("frame `{tag}` requires a `body`")))
}

impl Serialize for ToNodeFrame {
    fn to_content(&self) -> Content {
        let (tag, body) = match &self.body {
            ToNode::Init(b) => ("init", Some(b.to_content())),
            ToNode::RoundBarrier { ops } => (
                "round_barrier",
                Some(Content::Map(vec![("ops".to_string(), ops.to_content())])),
            ),
            ToNode::RoundMsgs { msgs } => (
                "round_msgs",
                Some(Content::Map(vec![("msgs".to_string(), msgs.to_content())])),
            ),
            ToNode::Snapshot => ("snapshot", None),
            ToNode::Halt => ("halt", None),
        };
        frame_content(tag, self.seq, body)
    }
}

impl Deserialize for ToNodeFrame {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let (tag, seq, body) = frame_parts(content)?;
        let field = |name: &str, body: &Content| -> Result<Content, serde::Error> {
            let map = body.as_map().ok_or_else(|| {
                serde::Error::custom(format!("frame `{tag}` body must be an object"))
            })?;
            content_get(map, name)
                .cloned()
                .ok_or_else(|| serde::Error::custom(format!("frame `{tag}` body missing `{name}`")))
        };
        let body = match tag {
            "init" => ToNode::Init(Box::new(InitBody::from_content(require_body(tag, body)?)?)),
            "round_barrier" => ToNode::RoundBarrier {
                ops: Vec::<AsmCtl>::from_content(&field("ops", require_body(tag, body)?)?)?,
            },
            "round_msgs" => ToNode::RoundMsgs {
                msgs: Vec::<Envelope<AsmMsg>>::from_content(&field(
                    "msgs",
                    require_body(tag, body)?,
                )?)?,
            },
            "snapshot" => ToNode::Snapshot,
            "halt" => ToNode::Halt,
            other => return Err(serde::Error::custom(format!("unknown frame `{other}`"))),
        };
        Ok(ToNodeFrame { seq, body })
    }
}

impl Serialize for FromNodeFrame {
    fn to_content(&self) -> Content {
        let (tag, body) = match &self.body {
            FromNode::Hello {
                proc_index,
                players,
            } => (
                "hello",
                Some(Content::Map(vec![
                    ("proc_index".to_string(), proc_index.to_content()),
                    ("players".to_string(), players.to_content()),
                ])),
            ),
            FromNode::BarrierOk { summary } => (
                "barrier_ok",
                Some(Content::Map(vec![(
                    "summary".to_string(),
                    summary.to_content(),
                )])),
            ),
            FromNode::RoundDone { sent, summary } => (
                "round_done",
                Some(Content::Map(vec![
                    ("sent".to_string(), sent.to_content()),
                    ("summary".to_string(), summary.to_content()),
                ])),
            ),
            FromNode::SnapshotData {
                finals,
                resends,
                stale,
            } => (
                "snapshot_data",
                Some(Content::Map(vec![
                    ("finals".to_string(), finals.to_content()),
                    ("resends".to_string(), resends.to_content()),
                    ("stale".to_string(), stale.to_content()),
                ])),
            ),
            FromNode::Halted => ("halted", None),
            FromNode::Nack { expected } => (
                "nack",
                Some(Content::Map(vec![(
                    "expected".to_string(),
                    expected.to_content(),
                )])),
            ),
            FromNode::NodeError { detail } => (
                "node_error",
                Some(Content::Map(vec![(
                    "detail".to_string(),
                    Content::Str(detail.clone()),
                )])),
            ),
        };
        frame_content(tag, self.seq, body)
    }
}

impl Deserialize for FromNodeFrame {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let (tag, seq, body) = frame_parts(content)?;
        let map = |body: &Content| -> Result<Vec<(String, Content)>, serde::Error> {
            body.as_map()
                .map(<[(String, Content)]>::to_vec)
                .ok_or_else(|| {
                    serde::Error::custom(format!("frame `{tag}` body must be an object"))
                })
        };
        let field = |map: &[(String, Content)], name: &str| -> Result<Content, serde::Error> {
            content_get(map, name)
                .cloned()
                .ok_or_else(|| serde::Error::custom(format!("frame `{tag}` body missing `{name}`")))
        };
        let body = match tag {
            "hello" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::Hello {
                    proc_index: u32::from_content(&field(&m, "proc_index")?)?,
                    players: u64::from_content(&field(&m, "players")?)?,
                }
            }
            "barrier_ok" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::BarrierOk {
                    summary: AsmSummary::from_content(&field(&m, "summary")?)?,
                }
            }
            "round_done" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::RoundDone {
                    sent: Vec::<Envelope<AsmMsg>>::from_content(&field(&m, "sent")?)?,
                    summary: AsmSummary::from_content(&field(&m, "summary")?)?,
                }
            }
            "snapshot_data" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::SnapshotData {
                    finals: Vec::<PlayerFinal>::from_content(&field(&m, "finals")?)?,
                    resends: u64::from_content(&field(&m, "resends")?)?,
                    stale: u64::from_content(&field(&m, "stale")?)?,
                }
            }
            "halted" => FromNode::Halted,
            "nack" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::Nack {
                    expected: u64::from_content(&field(&m, "expected")?)?,
                }
            }
            "node_error" => {
                let m = map(require_body(tag, body)?)?;
                FromNode::NodeError {
                    detail: String::from_content(&field(&m, "detail")?)?,
                }
            }
            other => return Err(serde::Error::custom(format!("unknown frame `{other}`"))),
        };
        Ok(FromNodeFrame { seq, body })
    }
}

/// Encodes a frame as its one-line wire form (no trailing newline).
pub fn encode<F: Serialize>(frame: &F) -> String {
    serde_json::to_string(frame).expect("protocol frames serialize infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_congest::NodeId;
    use asm_core::congest::Phase;

    #[test]
    fn to_node_frames_round_trip() {
        let frames = vec![
            ToNodeFrame {
                seq: 2,
                body: ToNode::RoundBarrier {
                    ops: vec![
                        AsmCtl::BeginQuantileMatch { gate: 2 },
                        AsmCtl::SetPhase(Phase::Respond),
                    ],
                },
            },
            ToNodeFrame {
                seq: 3,
                body: ToNode::RoundMsgs {
                    msgs: vec![Envelope::new(
                        NodeId::new(0),
                        NodeId::new(4),
                        AsmMsg::Propose,
                    )],
                },
            },
            ToNodeFrame {
                seq: 4,
                body: ToNode::Snapshot,
            },
            ToNodeFrame {
                seq: 5,
                body: ToNode::Halt,
            },
        ];
        for f in frames {
            let line = encode(&f);
            let back: ToNodeFrame = serde_json::from_str(&line).unwrap();
            assert_eq!(back, f, "{line}");
        }
    }

    #[test]
    fn from_node_frames_round_trip() {
        let frames = vec![
            FromNodeFrame {
                seq: 1,
                body: FromNode::Hello {
                    proc_index: 1,
                    players: 4,
                },
            },
            FromNodeFrame {
                seq: 2,
                body: FromNode::BarrierOk {
                    summary: AsmSummary::empty(),
                },
            },
            FromNodeFrame {
                seq: 3,
                body: FromNode::RoundDone {
                    sent: vec![Envelope::new(
                        NodeId::new(4),
                        NodeId::new(0),
                        AsmMsg::Accept,
                    )],
                    summary: AsmSummary::empty(),
                },
            },
            FromNodeFrame {
                seq: 4,
                body: FromNode::SnapshotData {
                    finals: vec![PlayerFinal {
                        id: NodeId::new(4),
                        partner: Some(NodeId::new(0)),
                        good: true,
                        removed: false,
                    }],
                    resends: 1,
                    stale: 0,
                },
            },
            FromNodeFrame {
                seq: 5,
                body: FromNode::Halted,
            },
            FromNodeFrame {
                seq: 9,
                body: FromNode::Nack { expected: 6 },
            },
            FromNodeFrame {
                seq: 0,
                body: FromNode::NodeError {
                    detail: "boom".to_string(),
                },
            },
        ];
        for f in frames {
            let line = encode(&f);
            let back: FromNodeFrame = serde_json::from_str(&line).unwrap();
            assert_eq!(back, f, "{line}");
        }
    }

    #[test]
    fn frame_tags_are_snake_case_on_the_wire() {
        let line = encode(&ToNodeFrame {
            seq: 7,
            body: ToNode::RoundMsgs { msgs: vec![] },
        });
        assert_eq!(line, r#"{"frame":"round_msgs","seq":7,"body":{"msgs":[]}}"#);
        let line = encode(&FromNodeFrame {
            seq: 7,
            body: FromNode::Halted,
        });
        assert_eq!(line, r#"{"frame":"halted","seq":7}"#);
    }

    #[test]
    fn unknown_and_malformed_frames_are_rejected() {
        assert!(serde_json::from_str::<ToNodeFrame>(r#"{"frame":"warp","seq":1}"#).is_err());
        assert!(serde_json::from_str::<ToNodeFrame>(r#"{"seq":1}"#).is_err());
        assert!(serde_json::from_str::<ToNodeFrame>(r#"{"frame":"snapshot"}"#).is_err());
        assert!(
            serde_json::from_str::<ToNodeFrame>(r#"{"frame":"round_msgs","seq":1}"#).is_err(),
            "round_msgs requires a body"
        );
    }
}
