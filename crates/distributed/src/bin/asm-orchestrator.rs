//! `asm-orchestrator`: runs one almost-stable-matching instance
//! distributed across `asm-node` processes and prints a JSON summary.
//!
//! Usage:
//!
//! ```text
//! asm-orchestrator [--family regular] [--n 64] [--seed 1] [--eps 1.0]
//!                  [--procs 4] [--node-bin PATH]
//!                  [--fault-seed S] [--drop P] [--dup P] [--delay P]
//!                  [--max-delay K] [--timeout-ms N] [--attempts N]
//! ```
//!
//! `--family` is any generator family name (`complete`, `erdos_renyi`,
//! `regular`, `almost_regular`, `zipf`, `chain`, `master_list`,
//! `noisy_master`, `geometric`). The fault knobs configure the seeded
//! transport fault proxy; all default to off.

use asm_core::congest::RunPlan;
use asm_core::AsmConfig;
use asm_distributed::{run_distributed, sibling_node_bin, DistOptions, FaultPlan, TransportReport};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Duration;

/// What one orchestrated run prints, as one JSON line.
#[derive(Serialize)]
struct RunSummaryLine {
    instance: String,
    procs: usize,
    matched_pairs: usize,
    good_men: usize,
    bad_men: usize,
    rounds: u64,
    messages: u64,
    bits: u64,
    transport: TransportReport,
}

struct Cli {
    family: String,
    n: usize,
    seed: u64,
    eps: f64,
    backend: MatcherBackend,
    procs: usize,
    node_bin: Option<String>,
    faults: FaultPlan,
    timeout_ms: u64,
    attempts: u32,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        family: "regular".to_string(),
        n: 64,
        seed: 1,
        eps: 1.0,
        backend: MatcherBackend::DetGreedy,
        procs: 4,
        node_bin: None,
        faults: FaultPlan::none(),
        timeout_ms: 150,
        attempts: 40,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match arg.as_str() {
            "--family" => cli.family = value("--family")?,
            "--n" => cli.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--eps" => cli.eps = value("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--backend" => {
                cli.backend = match value("--backend")?.as_str() {
                    "det_greedy" => MatcherBackend::DetGreedy,
                    "bipartite_proposal" => MatcherBackend::BipartiteProposal,
                    "panconesi_rizzi" => MatcherBackend::PanconesiRizzi,
                    other => {
                        return Err(format!(
                            "--backend: `{other}` is not a deterministic message-passing \
                             backend (det_greedy, bipartite_proposal, panconesi_rizzi)"
                        ))
                    }
                }
            }
            "--procs" => {
                cli.procs = value("--procs")?
                    .parse()
                    .map_err(|e| format!("--procs: {e}"))?
            }
            "--node-bin" => cli.node_bin = Some(value("--node-bin")?),
            "--fault-seed" => {
                cli.faults.seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--drop" => {
                cli.faults.drop_p = value("--drop")?
                    .parse()
                    .map_err(|e| format!("--drop: {e}"))?
            }
            "--dup" => {
                cli.faults.dup_p = value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?
            }
            "--delay" => {
                cli.faults.delay_p = value("--delay")?
                    .parse()
                    .map_err(|e| format!("--delay: {e}"))?
            }
            "--max-delay" => {
                cli.faults.max_delay = value("--max-delay")?
                    .parse()
                    .map_err(|e| format!("--max-delay: {e}"))?
            }
            "--timeout-ms" => {
                cli.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--attempts" => {
                cli.attempts = value("--attempts")?
                    .parse()
                    .map_err(|e| format!("--attempts: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: asm-orchestrator [--family NAME] [--n N] [--seed S] [--eps E] \
                     [--procs P] [--node-bin PATH] [--fault-seed S] [--drop P] [--dup P] \
                     [--delay P] [--max-delay K] [--timeout-ms N] [--attempts N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("asm-orchestrator: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Some(config) = GeneratorConfig::all_families(cli.n, cli.seed)
        .into_iter()
        .find(|c| c.family() == cli.family)
    else {
        eprintln!("asm-orchestrator: unknown family `{}`", cli.family);
        return ExitCode::FAILURE;
    };
    let inst = config.build();
    let plan = match RunPlan::asm(&inst, &AsmConfig::new(cli.eps).with_backend(cli.backend)) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("asm-orchestrator: invalid plan: {e}");
            return ExitCode::FAILURE;
        }
    };

    let node_bin = cli
        .node_bin
        .map(Into::into)
        .unwrap_or_else(sibling_node_bin);
    let mut opts = DistOptions::new(cli.procs, node_bin).with_faults(cli.faults);
    opts.reply_timeout = Duration::from_millis(cli.timeout_ms);
    opts.max_attempts = cli.attempts;

    match run_distributed(&inst, &plan, &opts) {
        Ok(run) => {
            let summary = RunSummaryLine {
                instance: config.to_string(),
                procs: run.procs,
                matched_pairs: run.report.matching.pairs().count(),
                good_men: run.report.good_men,
                bad_men: run.report.bad_men.len(),
                rounds: run.report.stats.rounds,
                messages: run.report.stats.messages,
                bits: run.report.stats.bits,
                transport: run.transport,
            };
            match serde_json::to_string(&summary) {
                Ok(line) => {
                    println!("{line}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("asm-orchestrator: cannot serialize summary: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("asm-orchestrator: {e}");
            ExitCode::FAILURE
        }
    }
}
