//! `asm-node`: hosts a contiguous player range of the CONGEST engine
//! behind the newline-JSON node wire protocol.
//!
//! Usage: `asm-node --connect HOST:PORT`
//!
//! The node connects to the orchestrator, waits for its `init` frame,
//! and serves rounds until `halt` or EOF. It is purely reactive — all
//! scheduling lives in the orchestrator.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            "--help" | "-h" => {
                println!("usage: asm-node --connect HOST:PORT");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("asm-node: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("asm-node: missing --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    match asm_distributed::run_node(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("asm-node: {e}");
            ExitCode::FAILURE
        }
    }
}
