//! The orchestrator: partitions an instance across node processes and
//! drives the synchronous round loop over TCP.
//!
//! The orchestrator implements [`RoundDriver`], so
//! [`asm_core::congest::run_plan_with_driver`] — the *same* driver loop
//! the in-process engine runs — sequences the distributed execution.
//! Network semantics (one-round delivery delay, neighbor validation,
//! the CONGEST bit budget, and all of [`NetStats`]' accounting) are
//! replicated here exactly as [`asm_congest::Network::step`] implements
//! them, which is what makes a fault-free distributed run byte-identical
//! to the in-process engine: same matching, same round count, same
//! message count.
//!
//! Topology is a star: node processes never talk to each other. Every
//! player message travels node → orchestrator → node, with the
//! orchestrator concatenating per-process outboxes in process order
//! (= node-id order, since ranges are contiguous and ascending), which
//! reproduces the in-process engine's merge order.
//!
//! Reliability: each request is retried on timeout up to a cap, each
//! reply is matched by sequence number, and node processes answer
//! duplicates from a reply cache (see [`crate::node`]). A node that
//! stays silent through every retry is reported as
//! [`DistError::NodeLost`] — never a hang, never a partial matching.

use crate::fault::{FaultInjector, FaultPlan, InjectedCounts, KillSpec};
use crate::protocol::{
    encode, FromNode, FromNodeFrame, InitBody, ToNode, ToNodeFrame, DIST_SCHEMA,
};
use asm_congest::{CongestError, Envelope, NetStats, Payload, RoundDriver, RoundOutcome, Topology};
use asm_core::congest::{
    payload_bit_budget, run_plan_with_driver, AsmCtl, AsmMsg, AsmSummary, CongestReport,
    CongestRunError, DriveError, RunArtifacts, RunPlan,
};
use asm_instance::Instance;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Distributed execution failure.
#[derive(Debug)]
pub enum DistError {
    /// A node process could not be spawned or connected.
    Spawn(String),
    /// Transport failure talking to a node.
    Io(String),
    /// A node stopped answering (crash, kill, or unhealed partition).
    NodeLost {
        /// The unresponsive process.
        proc_index: u32,
        /// What the orchestrator was waiting for.
        detail: String,
    },
    /// A node answered something the protocol does not allow.
    Protocol {
        /// The misbehaving process.
        proc_index: u32,
        /// What was wrong.
        detail: String,
    },
    /// A simulated-network invariant broke (non-neighbor send, bit
    /// budget, matcher budget) — same failures the in-process engine
    /// reports.
    Network(CongestError),
    /// Setup failure before any round ran.
    Setup(CongestRunError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Spawn(d) => write!(f, "node spawn failed: {d}"),
            DistError::Io(d) => write!(f, "transport failed: {d}"),
            DistError::NodeLost { proc_index, detail } => {
                write!(f, "node {proc_index} lost: {detail}")
            }
            DistError::Protocol { proc_index, detail } => {
                write!(f, "node {proc_index} protocol violation: {detail}")
            }
            DistError::Network(e) => write!(f, "network invariant broken: {e}"),
            DistError::Setup(e) => write!(f, "setup failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Knobs for one distributed run.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Node processes to partition the instance across.
    pub procs: usize,
    /// Path to the `asm-node` binary.
    pub node_bin: PathBuf,
    /// Transport fault schedule ([`FaultPlan::none`] for a clean run).
    pub faults: FaultPlan,
    /// Per-attempt reply timeout.
    pub reply_timeout: Duration,
    /// Send attempts per request before declaring the node lost.
    pub max_attempts: u32,
    /// Total budget for all nodes to connect at startup.
    pub accept_timeout: Duration,
}

impl DistOptions {
    /// Defaults for `procs` processes served by `node_bin`.
    pub fn new(procs: usize, node_bin: impl Into<PathBuf>) -> Self {
        DistOptions {
            procs,
            node_bin: node_bin.into(),
            faults: FaultPlan::none(),
            reply_timeout: Duration::from_millis(150),
            max_attempts: 40,
            accept_timeout: Duration::from_secs(20),
        }
    }

    /// Replaces the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Per-link transport accounting for one finished run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkReport {
    /// The process this link served.
    pub proc_index: u32,
    /// Orchestrator-side resends after reply timeouts.
    pub retries: u64,
    /// Replies to already-settled sequence numbers the orchestrator
    /// discarded.
    pub stale_replies: u64,
    /// Node-side cached-reply resends (from `snapshot_data`).
    pub node_resends: u64,
    /// Node-side stale frames dropped (from `snapshot_data`).
    pub node_stale: u64,
    /// Faults injected on the orchestrator-to-node direction.
    pub out_faults: InjectedCounts,
    /// Faults injected on the node-to-orchestrator direction.
    pub in_faults: InjectedCounts,
}

/// Transport accounting for a whole run, one entry per link.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportReport {
    /// Per-link counters in process order.
    pub links: Vec<LinkReport>,
}

impl TransportReport {
    /// Whether the transport was perfectly clean: no faults injected,
    /// no retries, no duplicate traffic anywhere. Fault-free runs must
    /// satisfy this.
    pub fn is_clean(&self) -> bool {
        self.links.iter().all(|l| {
            l.retries == 0
                && l.stale_replies == 0
                && l.node_resends == 0
                && l.node_stale == 0
                && l.out_faults == InjectedCounts::default()
                && l.in_faults == InjectedCounts::default()
        })
    }

    /// Checks that the two ends' counters reconcile: every duplicate
    /// frame a node answered traces back to an orchestrator retry or an
    /// injected duplicate, and every stale reply the orchestrator
    /// discarded traces back to a node resend or an injected duplicate.
    ///
    /// # Errors
    ///
    /// A description of the first link whose books do not balance.
    pub fn reconcile(&self) -> Result<(), String> {
        for l in &self.links {
            if l.node_resends + l.node_stale > l.retries + l.out_faults.duplicated {
                return Err(format!(
                    "link {}: node answered {} duplicate frames but only {} retries + {} \
                     injected duplicates can account for them",
                    l.proc_index,
                    l.node_resends + l.node_stale,
                    l.retries,
                    l.out_faults.duplicated
                ));
            }
            if l.stale_replies > l.node_resends + l.in_faults.duplicated {
                return Err(format!(
                    "link {}: orchestrator discarded {} stale replies but only {} node \
                     resends + {} injected duplicates can account for them",
                    l.proc_index, l.stale_replies, l.node_resends, l.in_faults.duplicated
                ));
            }
        }
        Ok(())
    }
}

/// Everything a distributed run produces: the engine report (identical
/// to the in-process engine's for the same instance and plan) plus the
/// transport's accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct DistRunReport {
    /// The assembled run report.
    pub report: CongestReport,
    /// Transport counters.
    pub transport: TransportReport,
    /// Process count the run used.
    pub procs: usize,
}

/// Owns the spawned node processes; kills and reaps any survivor on
/// drop so no run — not even a failed one — leaks children.
struct Fleet {
    children: Vec<Option<Child>>,
}

impl Fleet {
    fn kill(&mut self, proc_index: u32) {
        if let Some(child) = self
            .children
            .get_mut(proc_index as usize)
            .and_then(Option::as_mut)
        {
            let _ = child.kill();
            let _ = child.wait();
            self.children[proc_index as usize] = None;
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for slot in &mut self.children {
            if let Some(mut child) = slot.take() {
                // Halted nodes exit on their own; anything else gets
                // SIGKILL so the wait below cannot block.
                if !matches!(child.try_wait(), Ok(Some(_))) {
                    let _ = child.kill();
                }
                let _ = child.wait();
            }
        }
    }
}

/// One orchestrator-to-node connection plus its fault machinery.
struct Link {
    proc_index: u32,
    stream: TcpStream,
    framer: asm_service::framing::LineFramer,
    out_faults: FaultInjector,
    in_faults: FaultInjector,
    ready: VecDeque<String>,
    retries: u64,
    stale_replies: u64,
    dead: bool,
}

impl Link {
    fn new(proc_index: u32, stream: TcpStream, faults: &FaultPlan) -> Self {
        Link {
            proc_index,
            stream,
            framer: asm_service::framing::LineFramer::new(crate::node::MAX_FRAME),
            out_faults: FaultInjector::new(faults, proc_index, 0),
            in_faults: FaultInjector::new(faults, proc_index, 1),
            ready: VecDeque::new(),
            retries: 0,
            stale_replies: 0,
            dead: false,
        }
    }

    /// Routes `line` through the outgoing fault injector and writes the
    /// surviving copies. Write failures mark the link dead (the retry
    /// loop turns that into [`DistError::NodeLost`]).
    fn send(&mut self, line: &str) {
        let mut wire = Vec::new();
        self.out_faults.admit(line.to_string(), &mut wire);
        for l in wire {
            if self.dead {
                return;
            }
            let write = self
                .stream
                .write_all(l.as_bytes())
                .and_then(|()| self.stream.write_all(b"\n"))
                .and_then(|()| self.stream.flush());
            if write.is_err() {
                self.dead = true;
            }
        }
    }

    /// Returns the next incoming frame that survives fault injection,
    /// or `None` once `deadline` passes or the peer is gone.
    fn poll(&mut self, deadline: Instant) -> Result<Option<FromNodeFrame>, DistError> {
        loop {
            if let Some(line) = self.ready.pop_front() {
                let frame: FromNodeFrame =
                    serde_json::from_str(&line).map_err(|e| DistError::Protocol {
                        proc_index: self.proc_index,
                        detail: format!("unparseable reply: {e}"),
                    })?;
                return Ok(Some(frame));
            }
            let now = Instant::now();
            if now >= deadline || self.dead {
                // Advance the incoming op clock so delayed frames drain
                // even when the node sends nothing new.
                let mut due = Vec::new();
                self.in_faults.tick(&mut due);
                self.ready.extend(due);
                if self.ready.is_empty() {
                    return Ok(None);
                }
                continue;
            }
            let slice = deadline
                .saturating_duration_since(now)
                .min(Duration::from_millis(20));
            self.stream
                .set_read_timeout(Some(slice.max(Duration::from_millis(1))))
                .map_err(|e| DistError::Io(e.to_string()))?;
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.framer.push(&chunk[..n]);
                    loop {
                        match self.framer.next_frame() {
                            Ok(Some(line)) => {
                                let mut due = Vec::new();
                                self.in_faults.admit(line, &mut due);
                                self.ready.extend(due);
                            }
                            Ok(None) => break,
                            Err(e) => {
                                return Err(DistError::Protocol {
                                    proc_index: self.proc_index,
                                    detail: format!("framing broken: {e}"),
                                })
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                // A reset (killed node) is the same as EOF: the link is
                // gone, and the retry loop reports the node lost.
                Err(_) => self.dead = true,
            }
        }
    }

    /// Sends `line` and waits for the reply carrying `seq`, resending on
    /// timeout up to `max_attempts` times.
    fn request(
        &mut self,
        seq: u64,
        line: &str,
        timeout: Duration,
        max_attempts: u32,
    ) -> Result<FromNode, DistError> {
        for attempt in 0..max_attempts.max(1) {
            if attempt > 0 {
                self.retries += 1;
                self.send(line);
            }
            let deadline = Instant::now() + timeout;
            // A `None` poll means this attempt timed out; resend.
            while let Some(frame) = self.poll(deadline)? {
                if frame.seq < seq {
                    self.stale_replies += 1;
                    continue;
                }
                if frame.seq > seq {
                    return Err(DistError::Protocol {
                        proc_index: self.proc_index,
                        detail: format!("reply for future seq {} while awaiting {seq}", frame.seq),
                    });
                }
                return match frame.body {
                    FromNode::NodeError { detail } => Err(DistError::Protocol {
                        proc_index: self.proc_index,
                        detail: format!("node reported: {detail}"),
                    }),
                    FromNode::Nack { expected } => Err(DistError::Protocol {
                        proc_index: self.proc_index,
                        detail: format!("nack: node expected seq {expected}, got {seq}"),
                    }),
                    body => Ok(body),
                };
            }
        }
        Err(DistError::NodeLost {
            proc_index: self.proc_index,
            detail: format!("no reply for seq {seq} after {max_attempts} attempts"),
        })
    }
}

/// The distributed [`RoundDriver`]: replicates the in-process network's
/// round semantics over N node processes.
pub struct DistDriver {
    links: Vec<Link>,
    fleet: Fleet,
    ranges: Vec<(u32, u32)>,
    topo: Topology,
    bit_budget: usize,
    pending: Vec<Envelope<AsmMsg>>,
    stats: NetStats,
    seq: u64,
    kill: Option<KillSpec>,
    reply_timeout: Duration,
    max_attempts: u32,
    transport_out: Rc<RefCell<Option<TransportReport>>>,
}

/// Splits `n` players into `procs` contiguous ranges (the last may be
/// short; trailing ranges may be empty when `procs > n`).
pub fn partition_ranges(n: usize, procs: usize) -> Vec<(u32, u32)> {
    let procs = procs.max(1);
    let chunk = n.div_ceil(procs).max(1);
    (0..procs)
        .map(|i| {
            let lo = (i * chunk).min(n) as u32;
            let hi = ((i + 1) * chunk).min(n) as u32;
            (lo, hi)
        })
        .collect()
}

impl DistDriver {
    /// Spawns the fleet, accepts the connections, and initializes every
    /// node with its player range.
    ///
    /// The second return value yields the [`TransportReport`] after
    /// [`RoundDriver::finish`] consumes the driver.
    #[allow(clippy::type_complexity)]
    pub fn new(
        inst: &Instance,
        plan: &RunPlan,
        opts: &DistOptions,
    ) -> Result<(Self, Rc<RefCell<Option<TransportReport>>>), DistError> {
        let n = inst.ids().num_players();
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| DistError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DistError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DistError::Io(e.to_string()))?;

        // Spawn and accept one node at a time so process `i` is
        // provably the peer of link `i` — targeted kills (fault plans)
        // and `Fleet` bookkeeping depend on that identity.
        let mut fleet = Fleet {
            children: Vec::new(),
        };
        let deadline = Instant::now() + opts.accept_timeout;
        let mut links = Vec::new();
        for proc_index in 0..opts.procs.max(1) as u32 {
            let child = Command::new(&opts.node_bin)
                .arg("--connect")
                .arg(addr.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| DistError::Spawn(format!("{}: {e}", opts.node_bin.display())))?;
            fleet.children.push(Some(child));
            let stream = loop {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(DistError::Spawn(format!(
                                "node {proc_index} never connected"
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(DistError::Io(e.to_string())),
                }
            };
            stream
                .set_nodelay(true)
                .map_err(|e| DistError::Io(e.to_string()))?;
            links.push(Link::new(proc_index, stream, &opts.faults));
        }

        let ranges = partition_ranges(n, opts.procs);
        let mut driver = DistDriver {
            links,
            fleet,
            ranges: ranges.clone(),
            topo: inst.topology(),
            bit_budget: payload_bit_budget(n),
            pending: Vec::new(),
            stats: NetStats::default(),
            seq: 0,
            kill: opts.faults.kill,
            reply_timeout: opts.reply_timeout,
            max_attempts: opts.max_attempts,
            transport_out: Rc::new(RefCell::new(None)),
        };

        let inits: Vec<ToNode> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| {
                ToNode::Init(Box::new(InitBody {
                    schema: DIST_SCHEMA,
                    proc_index: i as u32,
                    lo,
                    hi,
                    instance: inst.clone(),
                    config: plan.config.clone(),
                }))
            })
            .collect();
        let replies = driver.exchange(inits)?;
        for (i, reply) in replies.iter().enumerate() {
            let (lo, hi) = ranges[i];
            match reply {
                FromNode::Hello {
                    proc_index,
                    players,
                } if *proc_index == i as u32 && *players == u64::from(hi - lo) => {}
                other => {
                    return Err(DistError::Protocol {
                        proc_index: i as u32,
                        detail: format!("bad init reply: {other:?}"),
                    })
                }
            }
        }
        let cell = Rc::clone(&driver.transport_out);
        Ok((driver, cell))
    }

    /// One lockstep exchange: sends `bodies[i]` to link `i` under a
    /// fresh sequence number, then collects every matching reply.
    fn exchange(&mut self, bodies: Vec<ToNode>) -> Result<Vec<FromNode>, DistError> {
        assert_eq!(bodies.len(), self.links.len());
        self.seq += 1;
        let seq = self.seq;
        if let Some(kill) = self.kill {
            if kill.at_seq == seq {
                self.fleet.kill(kill.proc_index);
                self.kill = None;
            }
        }
        let lines: Vec<String> = bodies
            .into_iter()
            .map(|body| encode(&ToNodeFrame { seq, body }))
            .collect();
        for (link, line) in self.links.iter_mut().zip(&lines) {
            link.send(line);
        }
        let mut replies = Vec::with_capacity(lines.len());
        for (link, line) in self.links.iter_mut().zip(&lines) {
            replies.push(link.request(seq, line, self.reply_timeout, self.max_attempts)?);
        }
        Ok(replies)
    }

    fn broadcast(&mut self, body: ToNode) -> Result<Vec<FromNode>, DistError> {
        let bodies = vec![body; self.links.len()];
        self.exchange(bodies)
    }
}

impl RoundDriver for DistDriver {
    type Ctl = AsmCtl;
    type Summary = AsmSummary;
    type Final = RunArtifacts;
    type Error = DistError;

    fn control(&mut self, ops: &[AsmCtl]) -> Result<AsmSummary, DistError> {
        let replies = self.broadcast(ToNode::RoundBarrier { ops: ops.to_vec() })?;
        let mut summary = AsmSummary::empty();
        for (i, reply) in replies.iter().enumerate() {
            match reply {
                FromNode::BarrierOk { summary: s } => summary.absorb(s),
                other => {
                    return Err(DistError::Protocol {
                        proc_index: i as u32,
                        detail: format!("expected barrier_ok, got {other:?}"),
                    })
                }
            }
        }
        Ok(summary)
    }

    fn step(&mut self) -> Result<(RoundOutcome, AsmSummary), DistError> {
        // Delivery accounting, exactly as `Network::begin_round`.
        let delivered = self.pending.len() as u64;
        self.stats.messages += delivered;
        self.stats.max_messages_per_round = self.stats.max_messages_per_round.max(delivered);
        for env in &self.pending {
            let bits = env.payload.bits();
            self.stats.bits += bits as u64;
            self.stats.max_message_bits = self.stats.max_message_bits.max(bits);
        }

        // Partition this round's deliveries by hosting process,
        // preserving global staging order within each partition.
        let mut per_proc: Vec<Vec<Envelope<AsmMsg>>> =
            (0..self.links.len()).map(|_| Vec::new()).collect();
        let chunked: Vec<(u32, u32)> = self.ranges.clone();
        for env in std::mem::take(&mut self.pending) {
            let raw = env.dst.raw();
            let slot = chunked
                .iter()
                .position(|&(lo, hi)| raw >= lo && raw < hi)
                .expect("validated envelopes address hosted players");
            per_proc[slot].push(env);
        }

        let bodies: Vec<ToNode> = per_proc
            .into_iter()
            .map(|msgs| ToNode::RoundMsgs { msgs })
            .collect();
        let replies = self.exchange(bodies)?;

        // Merge outboxes in process order = node-id order, then validate
        // and enqueue exactly as `Network::finish_round`.
        let mut staged = Vec::new();
        let mut summary = AsmSummary::empty();
        for (i, reply) in replies.into_iter().enumerate() {
            match reply {
                FromNode::RoundDone {
                    mut sent,
                    summary: s,
                } => {
                    staged.append(&mut sent);
                    summary.absorb(&s);
                }
                other => {
                    return Err(DistError::Protocol {
                        proc_index: i as u32,
                        detail: format!("expected round_done, got {other:?}"),
                    })
                }
            }
        }
        let sent = staged.len() as u64;
        for env in &staged {
            if !self.topo.has_edge(env.src, env.dst) {
                return Err(DistError::Network(CongestError::NotANeighbor {
                    src: env.src,
                    dst: env.dst,
                }));
            }
            let bits = env.payload.bits();
            if bits > self.bit_budget {
                return Err(DistError::Network(CongestError::MessageTooLarge {
                    src: env.src,
                    bits,
                    budget: self.bit_budget,
                }));
            }
        }
        self.pending = staged;
        self.stats.rounds += 1;
        Ok((RoundOutcome { delivered, sent }, summary))
    }

    fn finish(mut self) -> Result<RunArtifacts, DistError> {
        let replies = self.broadcast(ToNode::Snapshot)?;
        let mut finals = Vec::new();
        let mut node_counters = Vec::new();
        for (i, reply) in replies.into_iter().enumerate() {
            let (lo, hi) = self.ranges[i];
            match reply {
                FromNode::SnapshotData {
                    finals: mut f,
                    resends,
                    stale,
                } => {
                    if f.len() != (hi - lo) as usize {
                        return Err(DistError::Protocol {
                            proc_index: i as u32,
                            detail: format!(
                                "snapshot holds {} finals for a {}-player range",
                                f.len(),
                                hi - lo
                            ),
                        });
                    }
                    finals.append(&mut f);
                    node_counters.push((resends, stale));
                }
                other => {
                    return Err(DistError::Protocol {
                        proc_index: i as u32,
                        detail: format!("expected snapshot_data, got {other:?}"),
                    })
                }
            }
        }

        // Capture the books now, while both sides' counters describe
        // the same window: the nodes froze theirs when they processed
        // `snapshot`, so halt-phase retries must not leak into ours.
        let links = self
            .links
            .iter()
            .zip(&node_counters)
            .map(|(link, &(node_resends, node_stale))| LinkReport {
                proc_index: link.proc_index,
                retries: link.retries,
                stale_replies: link.stale_replies,
                node_resends,
                node_stale,
                out_faults: link.out_faults.counts(),
                in_faults: link.in_faults.counts(),
            })
            .collect();
        *self.transport_out.borrow_mut() = Some(TransportReport { links });

        // Best-effort halt: the run's results are already in hand, and
        // `Fleet` reaps whatever does not exit on its own.
        self.seq += 1;
        let seq = self.seq;
        for link in &mut self.links {
            let line = encode(&ToNodeFrame {
                seq,
                body: ToNode::Halt,
            });
            link.send(&line);
            let _ = link.request(seq, &line, self.reply_timeout, 2);
        }

        Ok(RunArtifacts {
            finals,
            stats: self.stats.clone(),
        })
    }
}

/// Runs `plan` on `inst` distributed across `opts.procs` node
/// processes, assembling the same [`CongestReport`] the in-process
/// engine produces.
///
/// # Errors
///
/// Setup, transport, protocol, and simulated-network failures; see
/// [`DistError`].
pub fn run_distributed(
    inst: &Instance,
    plan: &RunPlan,
    opts: &DistOptions,
) -> Result<DistRunReport, DistError> {
    let (driver, transport_cell) = DistDriver::new(inst, plan, opts)?;
    let report = run_plan_with_driver(inst, plan, driver).map_err(|e| match e {
        DriveError::Setup(e) => DistError::Setup(e),
        DriveError::MmBudgetExhausted { budget } => {
            DistError::Network(CongestError::PhaseBudgetExhausted { budget })
        }
        DriveError::Driver(e) => e,
    })?;
    let transport = transport_cell
        .borrow_mut()
        .take()
        .expect("finish stores the transport report");
    Ok(DistRunReport {
        report,
        transport,
        procs: opts.procs.max(1),
    })
}

/// The `asm-node` binary expected next to the currently running binary
/// (the layout `cargo build` produces for workspace binaries).
pub fn sibling_node_bin() -> PathBuf {
    let mut path = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("asm-node"));
    path.set_file_name("asm-node");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_and_cover() {
        for (n, procs) in [(10, 3), (8, 8), (3, 5), (0, 2), (16, 1)] {
            let ranges = partition_ranges(n, procs);
            assert_eq!(ranges.len(), procs.max(1));
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1 as usize, n);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn transport_report_reconciliation_flags_unaccounted_duplicates() {
        let clean = LinkReport {
            proc_index: 0,
            retries: 0,
            stale_replies: 0,
            node_resends: 0,
            node_stale: 0,
            out_faults: InjectedCounts::default(),
            in_faults: InjectedCounts::default(),
        };
        let report = TransportReport { links: vec![clean] };
        assert!(report.is_clean());
        report.reconcile().unwrap();

        let mut bad = clean;
        bad.node_resends = 3; // no retries or duplicates to explain them
        let report = TransportReport { links: vec![bad] };
        assert!(!report.is_clean());
        assert!(report.reconcile().is_err());

        let mut ok = clean;
        ok.node_resends = 2;
        ok.retries = 1;
        ok.out_faults.duplicated = 1;
        ok.stale_replies = 2;
        TransportReport { links: vec![ok] }.reconcile().unwrap();
    }
}
