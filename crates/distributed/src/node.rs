//! The node side of the wire protocol: hosts a contiguous player range
//! behind a TCP session.
//!
//! A node is purely reactive. It connects to the orchestrator, receives
//! an `init` frame naming its player range, and then answers one frame
//! at a time — applying control batches, stepping its players through
//! synchronous rounds, and finally reporting per-player state — until a
//! `halt` frame (or EOF) ends the session.
//!
//! Delivery can be faulty (the orchestrator's fault proxy drops,
//! delays, duplicates, and reorders frames), so the node implements the
//! receive half of the protocol's at-most-once machinery: it processes
//! each sequence number exactly once, answers duplicates of the last
//! processed frame by resending the cached reply byte-for-byte, ignores
//! stale (older) duplicates, and `nack`s sequence gaps. Either way the
//! player state machine only ever advances once per sequence number, so
//! a run over a faulty transport converges to the same execution as a
//! fault-free one.

use crate::protocol::{
    encode, FromNode, FromNodeFrame, InitBody, ToNode, ToNodeFrame, DIST_SCHEMA,
};
use asm_congest::{Envelope, NodeId, Outbox};
use asm_core::congest::{
    apply_ctl, build_players, collect_finals, summarize_players, AsmMsg, Player,
};
use asm_service::framing::LineFramer;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Largest frame a node accepts, in bytes. Generous: the biggest
/// legitimate frame is `init` carrying a whole instance.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Fatal node-session failure.
#[derive(Debug)]
pub enum NodeError {
    /// Transport failure.
    Io(std::io::Error),
    /// The peer broke framing (overflow or invalid UTF-8).
    Framing(String),
    /// A frame could not be honored (bad init, range mismatch).
    Protocol(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "transport failed: {e}"),
            NodeError::Framing(d) => write!(f, "framing broken: {d}"),
            NodeError::Protocol(d) => write!(f, "protocol violated: {d}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<std::io::Error> for NodeError {
    fn from(e: std::io::Error) -> Self {
        NodeError::Io(e)
    }
}

/// The player range a node hosts once `init` arrives.
struct Hosted {
    players: Vec<Player>,
    lo: u32,
    last_gate: usize,
}

impl Hosted {
    fn build(init: &InitBody) -> Result<Self, NodeError> {
        if init.schema != DIST_SCHEMA {
            return Err(NodeError::Protocol(format!(
                "orchestrator speaks schema {}, node speaks {DIST_SCHEMA}",
                init.schema
            )));
        }
        let n = init.instance.ids().num_players() as u32;
        if init.lo > init.hi || init.hi > n {
            return Err(NodeError::Protocol(format!(
                "range {}..{} outside the {n}-player instance",
                init.lo, init.hi
            )));
        }
        let players = build_players(&init.instance, &init.config, init.lo..init.hi)
            .map_err(|e| NodeError::Protocol(format!("cannot build players: {e}")))?;
        Ok(Hosted {
            players,
            lo: init.lo,
            last_gate: 0,
        })
    }

    /// One synchronous round: deliver `msgs` to per-player inboxes
    /// (preserving the orchestrator's global staging order) and step
    /// every hosted player in node-id order — exactly the serial loop of
    /// [`asm_congest::Network::step`] restricted to this range.
    fn step(&mut self, msgs: &[Envelope<AsmMsg>]) -> Result<Vec<Envelope<AsmMsg>>, NodeError> {
        let mut inboxes: Vec<Vec<Envelope<AsmMsg>>> = vec![Vec::new(); self.players.len()];
        for env in msgs {
            let slot = (env.dst.raw().wrapping_sub(self.lo)) as usize;
            match inboxes.get_mut(slot) {
                Some(inbox) => inbox.push(env.clone()),
                None => {
                    return Err(NodeError::Protocol(format!(
                        "delivery for {} outside hosted range",
                        env.dst
                    )))
                }
            }
        }
        let mut sent = Vec::new();
        for (i, player) in self.players.iter_mut().enumerate() {
            let mut outbox = Outbox::new(NodeId::new(self.lo + i as u32));
            asm_congest::Process::on_round(player, &inboxes[i], &mut outbox);
            sent.append(&mut outbox.drain());
        }
        Ok(sent)
    }
}

/// One node session over a TCP stream.
pub struct NodeRunner {
    stream: TcpStream,
    framer: LineFramer,
    max_frame: usize,
    hosted: Option<Hosted>,
    last_seq: u64,
    last_reply: Option<String>,
    resends: u64,
    stale: u64,
}

impl NodeRunner {
    /// Wraps a connected stream in a fresh session.
    pub fn new(stream: TcpStream) -> Self {
        NodeRunner::with_frame_cap(stream, MAX_FRAME)
    }

    /// [`NodeRunner::new`] with a custom frame cap — production sessions
    /// use [`MAX_FRAME`]; tests shrink the cap so oversize rejection is
    /// exercisable without a 64 MiB write.
    pub fn with_frame_cap(stream: TcpStream, max_frame: usize) -> Self {
        NodeRunner {
            stream,
            framer: LineFramer::new(max_frame),
            max_frame,
            hosted: None,
            last_seq: 0,
            last_reply: None,
            resends: 0,
            stale: 0,
        }
    }

    /// Serves the session until `halt`, EOF, or a fatal error. Protocol
    /// errors are reported to the peer as a `node_error` frame before
    /// returning.
    pub fn serve(mut self) -> Result<(), NodeError> {
        loop {
            let mut chunk = [0u8; 64 * 1024];
            let n = match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // orchestrator hung up
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(NodeError::Io(e)),
            };
            self.framer.push(&chunk[..n]);
            loop {
                let line = match self.framer.next_frame() {
                    Ok(Some(line)) => line,
                    Ok(None) => break,
                    Err(e) => {
                        let detail = format!("unreadable frame: {e}");
                        self.send_error(0, &detail)?;
                        return Err(NodeError::Framing(detail));
                    }
                };
                if self.framer.overflowed() {
                    let detail = format!("frame exceeds the {}-byte cap", self.max_frame);
                    self.send_error(0, &detail)?;
                    return Err(NodeError::Framing(detail));
                }
                if self.handle_line(&line)? {
                    return Ok(());
                }
            }
            if self.framer.overflowed() {
                let detail = format!("frame exceeds the {}-byte cap", self.max_frame);
                self.send_error(0, &detail)?;
                return Err(NodeError::Framing(detail));
            }
        }
    }

    /// Handles one frame; returns `true` when the session is over.
    fn handle_line(&mut self, line: &str) -> Result<bool, NodeError> {
        let frame: ToNodeFrame = match serde_json::from_str(line) {
            Ok(f) => f,
            Err(e) => {
                // Malformed frames carry no usable seq; report and keep
                // serving (the orchestrator never sends these, so this
                // is defense against misbehaving peers).
                self.send_error(0, &format!("malformed frame: {e}"))?;
                return Ok(false);
            }
        };
        // At-most-once: duplicates of the last frame get the cached
        // reply; older ones are stale; gaps are unreachable in lockstep.
        if frame.seq == self.last_seq {
            if let Some(reply) = self.last_reply.clone() {
                self.resends += 1;
                self.send_line(&reply)?;
            }
            return Ok(false);
        }
        if frame.seq < self.last_seq {
            self.stale += 1;
            return Ok(false);
        }
        if frame.seq != self.last_seq + 1 {
            let reply = FromNodeFrame {
                seq: frame.seq,
                body: FromNode::Nack {
                    expected: self.last_seq + 1,
                },
            };
            self.send_line(&encode(&reply))?;
            return Ok(false);
        }

        let halting = matches!(frame.body, ToNode::Halt);
        let body = match self.process(frame.body) {
            Ok(body) => body,
            Err(e) => {
                self.send_error(frame.seq, &e.to_string())?;
                return Err(e);
            }
        };
        let reply = encode(&FromNodeFrame {
            seq: frame.seq,
            body,
        });
        self.last_seq = frame.seq;
        self.last_reply = Some(reply.clone());
        self.send_line(&reply)?;
        Ok(halting)
    }

    /// Applies one in-order frame to the hosted players.
    fn process(&mut self, body: ToNode) -> Result<FromNode, NodeError> {
        match body {
            ToNode::Init(init) => {
                let hosted = Hosted::build(&init)?;
                let players = hosted.players.len() as u64;
                self.hosted = Some(hosted);
                Ok(FromNode::Hello {
                    proc_index: init.proc_index,
                    players,
                })
            }
            ToNode::RoundBarrier { ops } => {
                let hosted = self.hosted_mut()?;
                for op in &ops {
                    if let asm_core::congest::AsmCtl::BeginQuantileMatch { gate } = *op {
                        hosted.last_gate = gate;
                    }
                }
                apply_ctl(&mut hosted.players, &ops);
                Ok(FromNode::BarrierOk {
                    summary: summarize_players(&hosted.players, hosted.last_gate),
                })
            }
            ToNode::RoundMsgs { msgs } => {
                let hosted = self.hosted_mut()?;
                let sent = hosted.step(&msgs)?;
                Ok(FromNode::RoundDone {
                    sent,
                    summary: summarize_players(&hosted.players, hosted.last_gate),
                })
            }
            ToNode::Snapshot => {
                let resends = self.resends;
                let stale = self.stale;
                let hosted = self.hosted_mut()?;
                Ok(FromNode::SnapshotData {
                    finals: collect_finals(&hosted.players),
                    resends,
                    stale,
                })
            }
            ToNode::Halt => Ok(FromNode::Halted),
        }
    }

    fn hosted_mut(&mut self) -> Result<&mut Hosted, NodeError> {
        self.hosted
            .as_mut()
            .ok_or_else(|| NodeError::Protocol("frame before init".to_string()))
    }

    fn send_error(&mut self, seq: u64, detail: &str) -> Result<(), NodeError> {
        let frame = FromNodeFrame {
            seq,
            body: FromNode::NodeError {
                detail: detail.to_string(),
            },
        };
        self.send_line(&encode(&frame))
    }

    fn send_line(&mut self, line: &str) -> Result<(), NodeError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        Ok(())
    }
}

/// Connects to the orchestrator at `addr` and serves one session.
///
/// # Errors
///
/// Connection and session failures; see [`NodeRunner::serve`].
pub fn run_node(addr: &str) -> Result<(), NodeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    NodeRunner::new(stream).serve()
}
