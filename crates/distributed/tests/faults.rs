//! Fault-injection battery for the distributed runtime.
//!
//! The differential suite pins what a clean transport produces; this
//! suite pins how the runtime behaves when the transport misbehaves —
//! frames dropped, delayed past their successors, duplicated, and whole
//! links severed and healed mid-run, plus a node SIGKILLed between
//! rounds. Faults are transport-level only, so every surviving run must
//! still be byte-identical to the in-process engine, pass the
//! conformance oracles, and close with transport books that reconcile:
//! every duplicate frame a node answered traces to a retry or an
//! injected duplicate, and every stale reply the orchestrator discarded
//! traces to a node resend or an injected duplicate.
//!
//! `ASM_FAULT_ITERS` (default 1) repeats each scenario with rotated
//! seeds — the nightly battery runs at 10×.

use asm_conformance::check_congest_run;
use asm_core::congest::{asm_congest, CongestReport, RunPlan};
use asm_core::AsmConfig;
use asm_distributed::{
    run_distributed, DistError, DistOptions, FaultPlan, KillSpec, PartitionWindow,
};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;
use std::time::{Duration, Instant};

const EPS: f64 = 1.0;

fn node_bin() -> &'static str {
    env!("CARGO_BIN_EXE_asm-node")
}

fn iterations() -> u64 {
    std::env::var("ASM_FAULT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn instance_and_plan(seed: u64) -> (asm_instance::Instance, RunPlan, CongestReport) {
    let gen = GeneratorConfig::Zipf {
        n: 12,
        d: 4,
        s: 1.2,
        seed,
    };
    let inst = gen.build();
    let config = AsmConfig::new(EPS).with_backend(MatcherBackend::DetGreedy);
    let expected = asm_congest(&inst, &config).expect("in-process run succeeds");
    let plan = RunPlan::asm(&inst, &config).expect("valid plan");
    (inst, plan, expected)
}

/// Runs the scenario and asserts the full invariant set: byte-identical
/// report, clean conformance oracles, reconciling transport books.
fn assert_faulted_run_converges(scenario: &str, faults: FaultPlan, procs: usize) {
    let (inst, plan, expected) = instance_and_plan(faults.seed ^ 0x5eed);
    let mut opts = DistOptions::new(procs, node_bin()).with_faults(faults);
    opts.reply_timeout = Duration::from_millis(40);
    let run = run_distributed(&inst, &plan, &opts)
        .unwrap_or_else(|e| panic!("{scenario}: run failed: {e}"));

    assert_eq!(
        run.report, expected,
        "{scenario}: faulted run diverged from the in-process engine"
    );
    let violations = check_congest_run(&inst, &run.report, Some(EPS), None);
    assert!(
        violations.is_empty(),
        "{scenario}: conformance violations: {violations:?}"
    );
    run.transport
        .reconcile()
        .unwrap_or_else(|e| panic!("{scenario}: transport books broken: {e}"));
}

#[test]
fn dropped_frames_are_resent_until_the_run_converges() {
    for i in 0..iterations() {
        assert_faulted_run_converges("drop p=0.05", FaultPlan::lossy(100 + i, 0.05), 3);
    }
}

#[test]
fn delayed_and_reordered_frames_do_not_change_the_run() {
    for i in 0..iterations() {
        let faults = FaultPlan {
            seed: 200 + i,
            delay_p: 0.2,
            max_delay: 4,
            ..FaultPlan::none()
        };
        assert_faulted_run_converges("delay/reorder", faults, 3);
    }
}

#[test]
fn duplicated_frames_are_answered_at_most_once() {
    for i in 0..iterations() {
        let faults = FaultPlan {
            seed: 300 + i,
            dup_p: 0.15,
            ..FaultPlan::none()
        };
        assert_faulted_run_converges("duplicate p=0.15", faults, 3);
    }
}

#[test]
fn severed_links_heal_and_the_run_converges() {
    for i in 0..iterations() {
        let faults = FaultPlan {
            seed: 400 + i,
            partitions: vec![
                PartitionWindow {
                    proc_index: 0,
                    from_op: 4,
                    ops: 5,
                },
                PartitionWindow {
                    proc_index: 2,
                    from_op: 10 + i,
                    ops: 4,
                },
            ],
            ..FaultPlan::none()
        };
        assert_faulted_run_converges("partition-and-heal", faults, 3);
    }
}

#[test]
fn combined_chaos_still_converges() {
    for i in 0..iterations() {
        let faults = FaultPlan {
            seed: 500 + i,
            drop_p: 0.05,
            dup_p: 0.05,
            delay_p: 0.1,
            max_delay: 3,
            partitions: vec![PartitionWindow {
                proc_index: 1,
                from_op: 6,
                ops: 4,
            }],
            ..FaultPlan::none()
        };
        assert_faulted_run_converges("combined chaos", faults, 4);
    }
}

#[test]
fn killed_node_reports_node_lost_without_hanging() {
    let (inst, plan, _) = instance_and_plan(77);
    let faults = FaultPlan {
        kill: Some(KillSpec {
            proc_index: 1,
            at_seq: 4,
        }),
        ..FaultPlan::none()
    };
    let mut opts = DistOptions::new(3, node_bin()).with_faults(faults);
    opts.reply_timeout = Duration::from_millis(25);
    opts.max_attempts = 8;

    let started = Instant::now();
    let err = run_distributed(&inst, &plan, &opts).expect_err("a dead node cannot finish the run");
    let elapsed = started.elapsed();

    match err {
        DistError::NodeLost { proc_index, .. } => assert_eq!(proc_index, 1, "the killed node"),
        other => panic!("expected NodeLost, got: {other}"),
    }
    // No hang, no partial matching: the failure surfaces well within the
    // retry budget (8 attempts × 25ms, plus spawn overhead).
    assert!(
        elapsed < Duration::from_secs(10),
        "node loss took {elapsed:?} to surface"
    );
}

#[test]
fn fault_free_battery_books_are_all_zero() {
    let (inst, plan, expected) = instance_and_plan(5);
    let run = run_distributed(&inst, &plan, &DistOptions::new(3, node_bin()))
        .expect("clean run succeeds");
    assert_eq!(run.report, expected);
    assert!(run.transport.is_clean(), "{:?}", run.transport);
    run.transport.reconcile().expect("clean books reconcile");
}
