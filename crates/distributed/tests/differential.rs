//! Differential battery: distributed execution vs the in-process engine.
//!
//! Twenty seeded instances spanning all nine generator families run
//! through `run_distributed` — partitioned across 2, 4, and 8 node
//! processes in rotation, fault-free — and every run must reproduce the
//! in-process engine's `CongestReport` byte-for-byte: same matching,
//! same round count, same message and bit tallies, same good/bad-man
//! classification. The transport must come back perfectly clean (no
//! retries, no duplicate traffic).

use asm_core::congest::{asm_congest, RunPlan};
use asm_core::AsmConfig;
use asm_distributed::{run_distributed, DistOptions};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;

fn node_bin() -> &'static str {
    env!("CARGO_BIN_EXE_asm-node")
}

#[test]
fn distributed_runs_are_byte_identical_to_in_process_runs() {
    // 9 families × sizes/seeds, trimmed to 20 instances.
    let mut configs = Vec::new();
    for (n, seed) in [(8, 1), (10, 2), (12, 3)] {
        configs.extend(GeneratorConfig::all_families(n, seed));
    }
    configs.truncate(20);
    assert_eq!(configs.len(), 20);

    for (i, gen) in configs.iter().enumerate() {
        let procs = [2, 4, 8][i % 3];
        let inst = gen.build();
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let expected = asm_congest(&inst, &config).expect("in-process run succeeds");

        let plan = RunPlan::asm(&inst, &config).expect("valid plan");
        let opts = DistOptions::new(procs, node_bin());
        let run = run_distributed(&inst, &plan, &opts)
            .unwrap_or_else(|e| panic!("{gen} across {procs} procs failed: {e}"));

        assert_eq!(
            run.report, expected,
            "{gen} across {procs} procs diverged from the in-process engine"
        );
        assert!(
            run.transport.is_clean(),
            "{gen} across {procs} procs used retries on a fault-free transport: {:?}",
            run.transport
        );
    }
}

#[test]
fn process_count_never_changes_the_run() {
    // The same instance under every partition width, including procs >
    // players (empty trailing ranges) and procs = 1 (a single node
    // hosting everything).
    let gen = GeneratorConfig::Regular {
        n: 6,
        d: 3,
        seed: 44,
    };
    let inst = gen.build();
    let config = AsmConfig::new(0.5).with_backend(MatcherBackend::DetGreedy);
    let expected = asm_congest(&inst, &config).expect("in-process run succeeds");
    let plan = RunPlan::asm(&inst, &config).expect("valid plan");
    for procs in [1, 2, 3, 5, 16] {
        let run = run_distributed(&inst, &plan, &DistOptions::new(procs, node_bin()))
            .unwrap_or_else(|e| panic!("procs={procs} failed: {e}"));
        assert_eq!(run.report, expected, "procs={procs} diverged");
        assert!(run.transport.is_clean(), "procs={procs} transport dirty");
    }
}
