//! Golden wire corpus for the node protocol, replayed over a real
//! socket.
//!
//! `src/protocol.rs` unit tests pin individual frame encodings; this
//! suite pins whole *sessions* — handshake, control barrier, round
//! exchange, duplicate replay, nack, snapshot, halt, and malformed-frame
//! rejection — byte-for-byte through a real `TcpStream` served by
//! [`NodeRunner::serve`]. Any byte of drift in the wire protocol fails
//! the replay, so protocol changes must regenerate the corpus (the
//! ignored `regen` test) and show up in review as a `cases/` diff.
//!
//! A `step.expect` of `""` means the node answers nothing (stale frames
//! are dropped silently); oversized-frame rejection is code-driven at
//! the end because a 64 MiB line does not belong in a corpus file.

use asm_distributed::{NodeRunner, MAX_FRAME};
use asm_instance::generators::GeneratorConfig;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

#[derive(Clone, Debug, Serialize, Deserialize)]
struct GoldenCase {
    description: String,
    steps: Vec<Step>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Step {
    send: String,
    expect: String,
}

fn cases_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases")
}

/// Serves one node session on an ephemeral port and replays `sends`
/// against it, returning the reply line for each send (`""` when the
/// node stays silent, detected by a read timeout).
fn run_session(sends: &[String]) -> Vec<String> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        // Outcome intentionally ignored: rejection cases end the session
        // with an error after the node_error reply is on the wire.
        let _ = NodeRunner::new(stream).serve();
    });

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for send in sends {
        writer.write_all(send.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => replies.push(String::new()),
            Ok(_) => replies.push(line.trim_end_matches('\n').to_string()),
        }
    }
    drop(writer);
    drop(reader);
    let _ = server.join();
    replies
}

/// The scripted corpus: (file stem, description, session script). Every
/// session is self-contained — it opens with its own `init` (or
/// deliberately omits it) and drives one fresh node.
fn corpus() -> Vec<(&'static str, &'static str, Vec<String>)> {
    use asm_core::congest::AsmCtl;
    use asm_core::AsmConfig;
    use asm_distributed::{InitBody, ToNode, ToNodeFrame, DIST_SCHEMA};
    use asm_maximal::MatcherBackend;

    let inst = GeneratorConfig::Chain { n: 3 }.build();
    let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
    let n = inst.ids().num_players() as u32;
    let frame =
        |seq: u64, body: ToNode| asm_distributed::protocol::encode(&ToNodeFrame { seq, body });
    let init = |seq: u64| {
        frame(
            seq,
            ToNode::Init(Box::new(InitBody {
                schema: DIST_SCHEMA,
                proc_index: 0,
                lo: 0,
                hi: n,
                instance: inst.clone(),
                config: config.clone(),
            })),
        )
    };

    vec![
        (
            "handshake",
            "init answers hello with the hosted player count; snapshot and halt close the session",
            vec![
                init(1),
                frame(2, ToNode::Snapshot),
                frame(3, ToNode::Halt),
            ],
        ),
        (
            "round_trip",
            "a control barrier then an empty round: barrier_ok and round_done carry merged summaries",
            vec![
                init(1),
                frame(2, ToNode::RoundBarrier { ops: vec![AsmCtl::BeginQuantileMatch { gate: 1 }] }),
                frame(3, ToNode::RoundMsgs { msgs: vec![] }),
                frame(4, ToNode::Halt),
            ],
        ),
        (
            "duplicate_replay",
            "a repeated sequence number gets the cached reply, byte-for-byte",
            vec![
                init(1),
                frame(2, ToNode::Snapshot),
                frame(2, ToNode::Snapshot),
                frame(3, ToNode::Halt),
            ],
        ),
        (
            "stale_and_nack",
            "an older sequence number is dropped silently; a gap is nacked with the expected seq",
            vec![
                init(1),
                frame(2, ToNode::Snapshot),
                frame(1, ToNode::Snapshot),
                frame(7, ToNode::Snapshot),
                frame(3, ToNode::Halt),
            ],
        ),
        (
            "malformed",
            "non-JSON, an unknown frame tag, and a missing body are each rejected with node_error",
            vec![
                "{this is not json".to_string(),
                r#"{"frame":"warp","seq":1,"body":{}}"#.to_string(),
                r#"{"frame":"round_msgs","seq":1}"#.to_string(),
                init(1),
                frame(2, ToNode::Halt),
            ],
        ),
        (
            "frame_before_init",
            "a round frame before init is a protocol error that ends the session",
            vec![frame(1, ToNode::RoundMsgs { msgs: vec![] })],
        ),
    ]
}

#[test]
fn golden_corpus_replays_byte_identically_over_a_socket() {
    let dir = cases_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("crates/distributed/cases/ exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden corpus is empty");
    for name in names {
        let text = std::fs::read_to_string(dir.join(&name)).unwrap();
        let case: GoldenCase = serde_json::from_str(&text)
            .unwrap_or_else(|err| panic!("{name}: unparseable case file: {err}"));
        let sends: Vec<String> = case.steps.iter().map(|s| s.send.clone()).collect();
        let actual = run_session(&sends);
        assert_eq!(case.steps.len(), actual.len(), "{name}: step count");
        for (i, (step, got)) in case.steps.iter().zip(&actual).enumerate() {
            assert_eq!(
                got, &step.expect,
                "{name} step {i} ({}): reply drifted from the golden corpus",
                case.description
            );
        }
    }
}

#[test]
fn corpus_files_cover_every_scripted_case() {
    let dir = cases_dir();
    for (stem, _, _) in corpus() {
        assert!(
            dir.join(format!("{stem}.json")).exists(),
            "missing golden file for case `{stem}` — run the ignored `regen` test"
        );
    }
}

#[test]
fn oversized_frame_is_rejected_with_node_error() {
    // Production sessions cap frames at `MAX_FRAME`; the test shrinks
    // the cap so the identical rejection path runs without a 64 MiB
    // write.
    const CAP: usize = 4096;
    const _: () = assert!(MAX_FRAME > CAP);
    let cap = CAP;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        NodeRunner::with_frame_cap(stream, cap).serve()
    });

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // One unterminated line just past the frame cap.
    writer.write_all(&vec![b'x'; cap + 1]).unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains(r#""frame":"node_error""#) && line.contains("cap"),
        "expected an oversize node_error, got: {line}"
    );
    assert!(
        server.join().unwrap().is_err(),
        "the session must end in a framing error"
    );
}

/// Regenerates the corpus. Ignored by default: run explicitly after an
/// intentional protocol change, then review the diff.
#[test]
#[ignore = "rewrites the golden corpus; run explicitly after protocol changes"]
fn regen() {
    let dir = cases_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (stem, description, sends) in corpus() {
        let expects = run_session(&sends);
        let case = GoldenCase {
            description: description.to_string(),
            steps: sends
                .into_iter()
                .zip(expects)
                .map(|(send, expect)| Step { send, expect })
                .collect(),
        };
        let path = dir.join(format!("{stem}.json"));
        let mut text = serde_json::to_string_pretty(&case).unwrap();
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        println!("wrote {}", path.display());
    }
}
