//! Exhaustive stable-matching enumeration (testing oracle).
//!
//! Brute-force enumeration of **all** stable matchings of a small
//! instance, by backtracking over the men's assignments. Exponential by
//! nature — the set of stable matchings can itself be exponential in `n`
//! (Knuth) — so this is a *testing oracle*, not an algorithm: the unit and
//! property tests use it to validate lattice facts (man/woman-optimality
//! of Gale–Shapley, the Rural Hospitals theorem) that the fast algorithms
//! rely on.

use crate::{count_blocking_pairs, Matching};
use asm_congest::NodeId;
use asm_instance::Instance;

/// Enumerates every stable matching of `inst`, up to `cap` results.
///
/// Returns `None` if the search would exceed `cap` stable matchings —
/// callers treat that as "instance too large for the oracle".
///
/// The search assigns men in id order; each man is either left unmatched
/// or paired with a free acceptable woman, and full assignments are
/// filtered by an exact blocking-pair check. A cheap dominance prune cuts
/// obviously-unstable prefixes: a man left unmatched while an acceptable
/// woman is still free can never extend to a stable matching (they would
/// block), and neither can a man matched below a free woman he prefers
/// who prefers him back... (kept simple: the prune only drops
/// mutually-free acceptable pairs).
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{enumerate_stable_matchings, man_optimal_stable};
///
/// let inst = generators::complete(4, 7);
/// let all = enumerate_stable_matchings(&inst, 1000).expect("small instance");
/// assert!(!all.is_empty());
/// assert!(all.contains(&man_optimal_stable(&inst).matching));
/// ```
pub fn enumerate_stable_matchings(inst: &Instance, cap: usize) -> Option<Vec<Matching>> {
    let ids = inst.ids();
    let men: Vec<NodeId> = ids.men().collect();
    let mut matching = Matching::new(ids.num_players());
    let mut found: Vec<Matching> = Vec::new();
    let mut overflow = false;
    recurse(inst, &men, 0, &mut matching, &mut found, cap, &mut overflow);
    if overflow {
        None
    } else {
        Some(found)
    }
}

fn recurse(
    inst: &Instance,
    men: &[NodeId],
    i: usize,
    matching: &mut Matching,
    found: &mut Vec<Matching>,
    cap: usize,
    overflow: &mut bool,
) {
    if *overflow {
        return;
    }
    if i == men.len() {
        if count_blocking_pairs(inst, matching) == 0 {
            if found.len() == cap {
                *overflow = true;
                return;
            }
            found.push(matching.clone());
        }
        return;
    }
    let m = men[i];
    // Option 1: m stays unmatched — only viable if no acceptable woman
    // can end up free-and-mutually-blocking; the final filter catches the
    // rest, this prune only needs to be sound for completed prefixes.
    recurse(inst, men, i + 1, matching, found, cap, overflow);
    // Option 2: m takes a currently free acceptable woman.
    for &w in inst.prefs(m).ranked() {
        if matching.is_matched(w) {
            continue;
        }
        matching.add_pair(m, w).expect("both free");
        recurse(inst, men, i + 1, matching, found, cap, overflow);
        matching.remove(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{man_optimal_stable, woman_optimal_stable};
    use asm_instance::{generators, InstanceBuilder};

    #[test]
    fn unique_stable_matching_found() {
        // Everyone has distinct top choices: unique stable matching.
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [0, 1])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [1, 0])
            .build()
            .unwrap();
        let all = enumerate_stable_matchings(&inst, 100).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], man_optimal_stable(&inst).matching);
    }

    #[test]
    fn classic_two_stable_matchings() {
        // m0: w0 > w1, m1: w1 > w0; w0: m1 > m0, w1: m0 > m1 —
        // the man-optimal and woman-optimal matchings differ.
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [1, 0])
            .woman(1, [0, 1])
            .man(0, [0, 1])
            .man(1, [1, 0])
            .build()
            .unwrap();
        let all = enumerate_stable_matchings(&inst, 100).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&man_optimal_stable(&inst).matching));
        assert!(all.contains(&woman_optimal_stable(&inst).matching));
    }

    #[test]
    fn gale_shapley_extremes_bracket_the_lattice() {
        for seed in 0..6 {
            let inst = generators::complete(5, seed);
            let all = enumerate_stable_matchings(&inst, 10_000).unwrap();
            let mo = man_optimal_stable(&inst).matching;
            let wo = woman_optimal_stable(&inst).matching;
            assert!(all.contains(&mo), "seed {seed}");
            assert!(all.contains(&wo), "seed {seed}");
            for m in &all {
                for man in inst.ids().men() {
                    let r = |mm: &Matching| mm.partner(man).map(|w| inst.rank(man, w).unwrap());
                    // Man-optimal is every man's best stable outcome,
                    // woman-optimal his worst.
                    assert!(r(&mo) <= r(m), "seed {seed}");
                    assert!(r(m) <= r(&wo), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn rural_hospitals_same_matched_set_everywhere() {
        for seed in 0..6 {
            let inst = generators::erdos_renyi(5, 5, 0.5, seed);
            let all = enumerate_stable_matchings(&inst, 10_000).unwrap();
            assert!(!all.is_empty());
            let matched_set = |m: &Matching| {
                inst.ids()
                    .players()
                    .filter(|&v| m.is_matched(v))
                    .collect::<Vec<_>>()
            };
            let reference = matched_set(&all[0]);
            for m in &all[1..] {
                assert_eq!(matched_set(m), reference, "seed {seed}");
            }
        }
    }

    #[test]
    fn cap_overflow_reports_none() {
        // Master lists have a unique stable matching, so to force overflow
        // use cap 0 on any instance with >= 1 stable matching.
        let inst = generators::complete(3, 1);
        assert!(enumerate_stable_matchings(&inst, 0).is_none());
    }

    #[test]
    fn empty_instance_has_exactly_the_empty_matching() {
        let inst = InstanceBuilder::new(2, 2).build().unwrap();
        let all = enumerate_stable_matchings(&inst, 10).unwrap();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }
}
