//! The matching data structure.

use crate::MatchingError;
use asm_congest::NodeId;
use serde::{Deserialize, Serialize};

/// A matching: a set of disjoint pairs over nodes `0..n`.
///
/// Stored as a partner table so partner lookup is `O(1)`. The structure is
/// graph-agnostic — whether the pairs are edges of a particular instance is
/// checked separately by [`crate::verify_matching`].
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_matching::Matching;
///
/// let mut m = Matching::new(4);
/// m.add_pair(NodeId::new(0), NodeId::new(2))?;
/// assert_eq!(m.partner(NodeId::new(2)), Some(NodeId::new(0)));
/// assert_eq!(m.partner(NodeId::new(1)), None);
/// assert_eq!(m.len(), 1);
/// # Ok::<(), asm_matching::MatchingError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    partner: Vec<Option<NodeId>>,
}

impl Matching {
    /// Creates an empty matching over `n` nodes.
    pub fn new(n: usize) -> Self {
        Matching {
            partner: vec![None; n],
        }
    }

    /// Number of nodes this matching ranges over.
    pub fn num_nodes(&self) -> usize {
        self.partner.len()
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.partner.iter().flatten().count() / 2
    }

    /// Whether no pair is matched.
    pub fn is_empty(&self) -> bool {
        self.partner.iter().all(Option::is_none)
    }

    /// The partner of `v`, or `None` if unmatched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn partner(&self, v: NodeId) -> Option<NodeId> {
        self.partner[v.index()]
    }

    /// Whether `v` is matched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_matched(&self, v: NodeId) -> bool {
        self.partner(v).is_some()
    }

    /// Whether the pair `{u, v}` is in the matching.
    pub fn contains_pair(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.partner.len() && self.partner[u.index()] == Some(v)
    }

    /// Adds the pair `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if `u == v`, either node is out of range, or either
    /// node is already matched.
    pub fn add_pair(&mut self, u: NodeId, v: NodeId) -> Result<(), MatchingError> {
        if u == v {
            return Err(MatchingError::SelfPair { node: u });
        }
        for id in [u, v] {
            if id.index() >= self.partner.len() {
                return Err(MatchingError::OutOfRange {
                    node: id,
                    nodes: self.partner.len(),
                });
            }
        }
        for id in [u, v] {
            if self.partner[id.index()].is_some() {
                return Err(MatchingError::AlreadyMatched { node: id });
            }
        }
        self.partner[u.index()] = Some(v);
        self.partner[v.index()] = Some(u);
        Ok(())
    }

    /// Removes the pair containing `v`, returning the former partner.
    ///
    /// Returns `None` (and changes nothing) if `v` was unmatched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn remove(&mut self, v: NodeId) -> Option<NodeId> {
        let p = self.partner[v.index()].take()?;
        self.partner[p.index()] = None;
        Some(p)
    }

    /// Replaces `v`'s pair: removes any pair containing `v` or `u`, then
    /// matches `{u, v}`.
    ///
    /// This is the "woman upgrades her partner" operation of the proposal
    /// algorithms. Returns the displaced partners `(old of v, old of u)`.
    ///
    /// # Errors
    ///
    /// Returns an error on self-pairs or out-of-range ids.
    pub fn rematch(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<(Option<NodeId>, Option<NodeId>), MatchingError> {
        if u == v {
            return Err(MatchingError::SelfPair { node: u });
        }
        for id in [u, v] {
            if id.index() >= self.partner.len() {
                return Err(MatchingError::OutOfRange {
                    node: id,
                    nodes: self.partner.len(),
                });
            }
        }
        let old_v = self.remove(v);
        let old_u = self.remove(u);
        self.add_pair(u, v).expect("both endpoints freed above");
        Ok((old_v, old_u))
    }

    /// Iterates over matched pairs, each once, with the smaller id first.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.partner.iter().enumerate().filter_map(|(i, p)| {
            let u = NodeId::new(i as u32);
            p.filter(|&v| u < v).map(|v| (u, v))
        })
    }

    /// Iterates over matched nodes.
    pub fn matched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.partner
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| NodeId::new(i as u32))
    }
}

impl FromIterator<(NodeId, NodeId)> for Matching {
    /// Collects pairs into a matching sized to the largest id seen.
    ///
    /// # Panics
    ///
    /// Panics if the pairs do not form a matching (duplicate endpoints).
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let pairs: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        let n = pairs
            .iter()
            .map(|&(u, v)| u.index().max(v.index()) + 1)
            .max()
            .unwrap_or(0);
        let mut m = Matching::new(n);
        for (u, v) in pairs {
            m.add_pair(u, v).expect("pairs must be disjoint");
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn add_and_remove() {
        let mut m = Matching::new(4);
        m.add_pair(id(0), id(1)).unwrap();
        assert!(m.contains_pair(id(0), id(1)));
        assert!(m.contains_pair(id(1), id(0)));
        assert_eq!(m.remove(id(0)), Some(id(1)));
        assert!(m.is_empty());
        assert_eq!(m.remove(id(0)), None);
    }

    #[test]
    fn double_match_rejected() {
        let mut m = Matching::new(4);
        m.add_pair(id(0), id(1)).unwrap();
        let err = m.add_pair(id(1), id(2)).unwrap_err();
        assert!(matches!(err, MatchingError::AlreadyMatched { node } if node == id(1)));
    }

    #[test]
    fn self_pair_rejected() {
        let mut m = Matching::new(4);
        assert!(matches!(
            m.add_pair(id(2), id(2)),
            Err(MatchingError::SelfPair { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Matching::new(2);
        assert!(matches!(
            m.add_pair(id(0), id(5)),
            Err(MatchingError::OutOfRange { .. })
        ));
    }

    #[test]
    fn rematch_displaces_both_sides() {
        let mut m = Matching::new(6);
        m.add_pair(id(0), id(1)).unwrap();
        m.add_pair(id(2), id(3)).unwrap();
        let (old_v, old_u) = m.rematch(id(0), id(3)).unwrap();
        assert_eq!(old_v, Some(id(2)));
        assert_eq!(old_u, Some(id(1)));
        assert!(m.contains_pair(id(0), id(3)));
        assert!(!m.is_matched(id(1)));
        assert!(!m.is_matched(id(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn pairs_reported_once() {
        let mut m = Matching::new(6);
        m.add_pair(id(4), id(1)).unwrap();
        m.add_pair(id(0), id(5)).unwrap();
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(id(0), id(5)), (id(1), id(4))]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn from_iterator_builds_matching() {
        let m: Matching = vec![(id(0), id(3)), (id(1), id(2))].into_iter().collect();
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn from_iterator_panics_on_overlap() {
        let _: Matching = vec![(id(0), id(1)), (id(1), id(2))].into_iter().collect();
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Matching::new(3);
        m.add_pair(id(0), id(2)).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matching = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
