//! Rotations and the stable-matching lattice (Gusfield & Irving).
//!
//! The stable matchings of an instance form a distributive lattice whose
//! structure is captured by *rotations*: cyclic exchanges
//! `ρ = (m₀,w₀), …, (m_{k−1},w_{k−1})` exposed in a stable matching `M`
//! (with `wᵢ = p_M(mᵢ)`), whose *elimination* — re-marrying each `mᵢ` to
//! `w_{i+1 mod k}` — yields another stable matching in which every
//! involved man is slightly worse off and every involved woman better.
//! Starting from the man-optimal matching and eliminating exposed
//! rotations until the woman-optimal matching is reached walks a maximal
//! chain of the lattice; classically, every such walk eliminates exactly
//! the same set of rotations, each once.
//!
//! This module implements rotation discovery and elimination for the
//! incomplete-list (SMI) setting, exposing the full chain. It is used by
//! the tests as a structural probe of the lattice — cross-validated
//! against the brute-force [`crate::enumerate_stable_matchings`] oracle —
//! and by welfare analyses as a source of intermediate stable matchings
//! between the two Gale–Shapley extremes.

use crate::{count_blocking_pairs, man_optimal_stable, woman_optimal_stable, Matching};
use asm_congest::NodeId;
use asm_instance::Instance;
use std::collections::HashMap;

/// One rotation: the list of `(man, woman)` pairs it removes, in cycle
/// order (`mᵢ`'s next partner is `w_{i+1 mod k}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rotation {
    /// The matched pairs the rotation eliminates, in cycle order.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl Rotation {
    /// Number of pairs in the cycle (always ≥ 2).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Rotations are never empty; provided for lint-friendliness.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// `s_M(m)`: the first woman after `p_M(m)` on `m`'s list who would
/// accept `m`, i.e. strictly prefers `m` to her partner.
///
/// An *unmatched* woman on the way ends the scan with `None`: she is
/// single in every stable matching (rural-hospitals), so she accepts any
/// acceptable man — were `m` ever re-matched at or below her, `(m, w)`
/// would block. Skipping her instead can fabricate a `next` cycle that
/// is not a rotation (eliminating it produces an unstable matching).
fn successor(inst: &Instance, matching: &Matching, m: NodeId) -> Option<NodeId> {
    let p = matching.partner(m)?;
    let rank_p = inst.rank(m, p).expect("partner is acceptable");
    for &w in inst.prefs(m).ranked() {
        if inst.rank(m, w).expect("listed") <= rank_p {
            continue;
        }
        match matching.partner(w) {
            None => return None,
            Some(current) if inst.prefs(w).prefers(m, current) => return Some(w),
            Some(_) => {}
        }
    }
    None
}

/// Finds a rotation exposed in `matching`, or `None` if `matching` is the
/// woman-optimal stable matching.
///
/// # Panics
///
/// May return nonsense (caught by the caller's stability assertions) if
/// `matching` is not stable for `inst`.
pub fn exposed_rotation(inst: &Instance, matching: &Matching) -> Option<Rotation> {
    // next(m) = partner of s_M(m); cycles of `next` are rotations.
    let men: Vec<NodeId> = inst
        .ids()
        .men()
        .filter(|&m| matching.is_matched(m))
        .collect();
    let next: HashMap<NodeId, NodeId> = men
        .iter()
        .filter_map(|&m| {
            successor(inst, matching, m)
                .map(|w| (m, matching.partner(w).expect("successor is matched")))
        })
        .collect();

    // Walk the functional graph from each unvisited man until a node
    // repeats within the current walk (cycle) or the walk dies.
    let mut state: HashMap<NodeId, u8> = HashMap::new(); // 1 = on path, 2 = done
    for &start in &men {
        if state.contains_key(&start) {
            continue;
        }
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = start;
        loop {
            if let Some(&s) = state.get(&cur) {
                if s == 1 {
                    // Found a cycle: extract it from `path`.
                    let pos = path
                        .iter()
                        .position(|&x| x == cur)
                        .expect("on-path node is in path");
                    let cycle = &path[pos..];
                    let pairs = cycle
                        .iter()
                        .map(|&m| (m, matching.partner(m).expect("matched")))
                        .collect();
                    return Some(Rotation { pairs });
                }
                break; // reached an already-finished region
            }
            state.insert(cur, 1);
            path.push(cur);
            match next.get(&cur) {
                Some(&n) => cur = n,
                None => break,
            }
        }
        for m in path {
            state.insert(m, 2);
        }
    }
    None
}

/// Eliminates `rotation` from `matching` in place: each `mᵢ` re-marries
/// `w_{i+1 mod k}`.
///
/// # Panics
///
/// Panics if the rotation's pairs are not currently matched.
pub fn eliminate_rotation(matching: &mut Matching, rotation: &Rotation) {
    let k = rotation.pairs.len();
    for &(m, w) in &rotation.pairs {
        assert_eq!(matching.partner(m), Some(w), "rotation is stale");
        matching.remove(m);
    }
    for i in 0..k {
        let (m, _) = rotation.pairs[i];
        let (_, w_next) = rotation.pairs[(i + 1) % k];
        matching.add_pair(m, w_next).expect("freed above");
    }
}

/// The full rotation chain: every rotation eliminated on the walk from
/// the man-optimal to the woman-optimal stable matching, plus every
/// intermediate stable matching (chain\[0\] is man-optimal, the last
/// entry woman-optimal).
///
/// Every eliminated step is verified stable; the walk's length is bounded
/// by the total preference mass, so this runs in polynomial time even
/// though the lattice itself may be exponential.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{man_optimal_stable, rotation_chain, woman_optimal_stable};
///
/// let inst = generators::complete(6, 3);
/// let (rotations, chain) = rotation_chain(&inst);
/// assert_eq!(chain.first().unwrap(), &man_optimal_stable(&inst).matching);
/// assert_eq!(chain.last().unwrap(), &woman_optimal_stable(&inst).matching);
/// assert_eq!(chain.len(), rotations.len() + 1);
/// ```
pub fn rotation_chain(inst: &Instance) -> (Vec<Rotation>, Vec<Matching>) {
    let mut current = man_optimal_stable(inst).matching;
    let target = woman_optimal_stable(inst).matching;
    let mut rotations = Vec::new();
    let mut chain = vec![current.clone()];
    while current != target {
        let rot = exposed_rotation(inst, &current)
            .expect("a stable matching above the woman-optimal one exposes a rotation");
        eliminate_rotation(&mut current, &rot);
        debug_assert_eq!(
            count_blocking_pairs(inst, &current),
            0,
            "rotation elimination must preserve stability"
        );
        rotations.push(rot);
        chain.push(current.clone());
    }
    (rotations, chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_stable_matchings;
    use asm_instance::{generators, InstanceBuilder};

    #[test]
    fn unique_stable_matching_has_no_rotations() {
        let inst = generators::master_list(6, 1);
        let (rotations, chain) = rotation_chain(&inst);
        assert!(rotations.is_empty());
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn classic_instance_has_one_rotation() {
        // Two stable matchings differing by a single 2-cycle.
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [1, 0])
            .woman(1, [0, 1])
            .man(0, [0, 1])
            .man(1, [1, 0])
            .build()
            .unwrap();
        let (rotations, chain) = rotation_chain(&inst);
        assert_eq!(rotations.len(), 1);
        assert_eq!(rotations[0].len(), 2);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn every_chain_matching_is_in_the_lattice() {
        for seed in 0..10 {
            let inst = generators::complete(6, seed);
            let lattice = enumerate_stable_matchings(&inst, 100_000).unwrap();
            let (_, chain) = rotation_chain(&inst);
            for (i, m) in chain.iter().enumerate() {
                assert!(
                    lattice.contains(m),
                    "seed {seed}: chain entry {i} is not stable"
                );
            }
            // The chain is strictly monotone: men get weakly worse.
            for w in chain.windows(2) {
                assert_ne!(w[0], w[1]);
            }
        }
    }

    #[test]
    fn chain_covers_both_extremes_on_incomplete_lists() {
        for seed in 0..10 {
            let inst = generators::erdos_renyi(7, 7, 0.6, seed);
            let (rotations, chain) = rotation_chain(&inst);
            assert_eq!(chain[0], man_optimal_stable(&inst).matching);
            assert_eq!(*chain.last().unwrap(), woman_optimal_stable(&inst).matching);
            assert_eq!(chain.len(), rotations.len() + 1);
        }
    }

    #[test]
    fn rotations_move_men_down_and_women_up() {
        let inst = generators::complete(8, 5);
        let (rotations, chain) = rotation_chain(&inst);
        for (rot, m_before) in rotations.iter().zip(chain.iter()) {
            let k = rot.len();
            for i in 0..k {
                let (man, w_now) = rot.pairs[i];
                let (_, w_next) = rot.pairs[(i + 1) % k];
                assert!(
                    inst.prefs(man).prefers(w_now, w_next),
                    "men move down their lists"
                );
                assert!(
                    inst.prefs(w_next)
                        .prefers(man, m_before.partner(w_next).unwrap()),
                    "women move up theirs"
                );
            }
        }
    }

    #[test]
    fn chain_survives_unmatched_women_mid_list() {
        // Regression: `successor` used to *skip* unmatched women instead
        // of stopping at them, fabricating a `next` cycle that is not a
        // rotation; eliminating it left a blocking pair with the skipped
        // woman and the chain walk then panicked ("a stable matching
        // above the woman-optimal one exposes a rotation"). These regular
        // instances are the shrunk triggers (each has a woman unmatched
        // in every stable matching sitting mid-list on a matched man's
        // preference list).
        for (n, d, seed) in [(5, 4, 1163), (7, 3, 822), (7, 4, 427)] {
            let inst = generators::regular(n, d, seed);
            let lattice = enumerate_stable_matchings(&inst, 100_000).unwrap();
            let (rotations, chain) = rotation_chain(&inst);
            assert_eq!(chain[0], man_optimal_stable(&inst).matching);
            assert_eq!(*chain.last().unwrap(), woman_optimal_stable(&inst).matching);
            assert_eq!(chain.len(), rotations.len() + 1);
            for (i, m) in chain.iter().enumerate() {
                assert!(
                    lattice.contains(m),
                    "regular({n},{d},{seed}): chain entry {i} is not stable"
                );
            }
        }
    }

    #[test]
    fn chain_matches_lattice_on_regular_sweep() {
        // Broad randomized cross-check over the family that exposed the
        // regression: every chain entry must be a lattice element and the
        // extremes must match the Gale–Shapley ones.
        for seed in 0..60 {
            for d in [2, 3, 4] {
                let inst = generators::regular(6, d, seed);
                let lattice = enumerate_stable_matchings(&inst, 100_000).unwrap();
                let (_, chain) = rotation_chain(&inst);
                assert_eq!(chain[0], man_optimal_stable(&inst).matching);
                assert_eq!(*chain.last().unwrap(), woman_optimal_stable(&inst).matching);
                for m in &chain {
                    assert!(lattice.contains(m), "regular(6,{d},{seed})");
                }
            }
        }
    }

    #[test]
    fn rotation_count_matches_lattice_height_bound() {
        // The chain length can never exceed the number of stable
        // matchings (each step is a distinct lattice element).
        for seed in 0..5 {
            let inst = generators::complete(5, seed + 40);
            let lattice = enumerate_stable_matchings(&inst, 100_000).unwrap();
            let (_, chain) = rotation_chain(&inst);
            assert!(chain.len() <= lattice.len());
        }
    }
}
