//! Matching errors.

use asm_congest::NodeId;
use std::error::Error;
use std::fmt;

/// Errors from matching construction and verification.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchingError {
    /// Attempted to match a node with itself.
    SelfPair {
        /// The node.
        node: NodeId,
    },
    /// A node id exceeded the matching's range.
    OutOfRange {
        /// The node.
        node: NodeId,
        /// Size of the matching's node range.
        nodes: usize,
    },
    /// Attempted to match a node that already has a partner.
    AlreadyMatched {
        /// The node.
        node: NodeId,
    },
    /// Verification: a matched pair is not an edge of the instance.
    NotAnEdge {
        /// The man (or first endpoint).
        u: NodeId,
        /// The woman (or second endpoint).
        v: NodeId,
    },
    /// Verification: a matched pair has two players of the same gender.
    SameGenderPair {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Verification: the matching's node range does not cover the
    /// instance's players.
    SizeMismatch {
        /// Nodes the matching ranges over.
        nodes: usize,
        /// Players in the instance.
        players: usize,
    },
    /// Verification: the partner table is inconsistent — `node` points at
    /// `partner`, but `partner` does not point back (possible only in a
    /// hand-built or deserialized matching; `add_pair` maintains
    /// symmetry).
    Asymmetric {
        /// The node whose entry is one-sided.
        node: NodeId,
        /// The partner it claims.
        partner: NodeId,
    },
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::SelfPair { node } => write!(f, "cannot match {node} with itself"),
            MatchingError::OutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node matching")
            }
            MatchingError::AlreadyMatched { node } => {
                write!(f, "node {node} is already matched")
            }
            MatchingError::NotAnEdge { u, v } => {
                write!(f, "matched pair ({u}, {v}) is not an acceptable pair")
            }
            MatchingError::SameGenderPair { u, v } => {
                write!(f, "matched pair ({u}, {v}) has the same gender")
            }
            MatchingError::SizeMismatch { nodes, players } => {
                write!(
                    f,
                    "matching over {nodes} nodes cannot cover {players} players"
                )
            }
            MatchingError::Asymmetric { node, partner } => {
                write!(
                    f,
                    "partner table asymmetric: {node} points at {partner}, \
                     which does not point back"
                )
            }
        }
    }
}

impl Error for MatchingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let variants = [
            MatchingError::SelfPair {
                node: NodeId::new(0),
            },
            MatchingError::OutOfRange {
                node: NodeId::new(9),
                nodes: 3,
            },
            MatchingError::AlreadyMatched {
                node: NodeId::new(1),
            },
            MatchingError::NotAnEdge {
                u: NodeId::new(0),
                v: NodeId::new(1),
            },
            MatchingError::SameGenderPair {
                u: NodeId::new(0),
                v: NodeId::new(1),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
