//! Centralized (extended) Gale–Shapley — ground truth and baseline.

use crate::Matching;
use asm_instance::{Instance, Rank};
use serde::{Deserialize, Serialize};

/// Result of running centralized Gale–Shapley.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GsOutcome {
    /// The man-optimal stable matching.
    pub matching: Matching,
    /// Total proposals made — the classical `O(n²)` work measure, reported
    /// so experiments can compare against the distributed algorithms'
    /// round counts.
    pub proposals: u64,
}

/// Runs the centralized extended Gale–Shapley algorithm (men proposing) and
/// returns the man-optimal stable matching.
///
/// Handles incomplete (but symmetric) preference lists: men exhaust their
/// lists and may remain unmatched, as may unpopular women. The output is
/// stable — a property the test suite checks against
/// [`crate::count_blocking_pairs`] on every instance family.
///
/// Runs in `O(|E| log Δ)` time.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{count_blocking_pairs, man_optimal_stable};
///
/// let inst = generators::complete(32, 9);
/// let gs = man_optimal_stable(&inst);
/// assert_eq!(gs.matching.len(), 32); // complete instances match everyone
/// assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
/// ```
pub fn man_optimal_stable(inst: &Instance) -> GsOutcome {
    let ids = inst.ids();
    let n_players = ids.num_players();
    let mut matching = Matching::new(n_players);
    let mut proposals: u64 = 0;

    // next[j] = index into man j's ranked list of his next proposal.
    let mut next: Vec<usize> = vec![0; ids.num_men()];
    // Worklist of free men with list entries remaining.
    let mut free: Vec<usize> = (0..ids.num_men()).collect();

    while let Some(j) = free.pop() {
        let m = ids.man(j);
        let list = inst.prefs(m).ranked();
        let Some(&w) = list.get(next[j]) else {
            continue; // exhausted his list; stays unmatched
        };
        next[j] += 1;
        proposals += 1;

        let w_rank_of_m: Rank = inst
            .rank(w, m)
            .expect("symmetric preferences: w must rank m back");
        match matching.partner(w) {
            None => {
                matching.add_pair(m, w).expect("both free");
            }
            Some(current) => {
                let w_rank_of_current = inst.rank(w, current).expect("partner must be ranked");
                if w_rank_of_m < w_rank_of_current {
                    matching.remove(w);
                    matching.add_pair(m, w).expect("both free");
                    free.push(ids.side_index(current));
                } else {
                    free.push(j); // rejected; try his next choice
                }
            }
        }
    }

    GsOutcome {
        matching,
        proposals,
    }
}

/// Runs Gale–Shapley with the *women* proposing, returning the
/// woman-optimal stable matching (expressed in the original instance's
/// node ids).
///
/// Implemented by running [`man_optimal_stable`] on the gender-swapped
/// instance ([`Instance::swap_genders`]) and translating the pairs back.
/// Comparing the two optima brackets the whole stable-matching lattice:
/// any stable matching ranks between them for each side.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{count_blocking_pairs, man_optimal_stable, woman_optimal_stable, WelfareReport};
///
/// let inst = generators::complete(16, 4);
/// let wo = woman_optimal_stable(&inst);
/// assert_eq!(count_blocking_pairs(&inst, &wo.matching), 0);
/// // Lattice duality: under the woman-optimal matching, the women's mean
/// // rank is at least as good as under the man-optimal one.
/// let mo = man_optimal_stable(&inst);
/// let wo_welfare = WelfareReport::measure(&inst, &wo.matching);
/// let mo_welfare = WelfareReport::measure(&inst, &mo.matching);
/// assert!(wo_welfare.women_mean_rank <= mo_welfare.women_mean_rank);
/// assert!(wo_welfare.men_mean_rank >= mo_welfare.men_mean_rank);
/// ```
pub fn woman_optimal_stable(inst: &Instance) -> GsOutcome {
    let swapped = inst.swap_genders();
    let out = man_optimal_stable(&swapped);
    let mut matching = Matching::new(inst.ids().num_players());
    for (u, v) in out.matching.pairs() {
        matching
            .add_pair(swapped.swap_node(u), swapped.swap_node(v))
            .expect("translated pairs stay disjoint");
    }
    GsOutcome {
        matching,
        proposals: out.proposals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_blocking_pairs;
    use asm_instance::{generators, InstanceBuilder};

    #[test]
    fn stable_on_all_generator_families() {
        let instances = vec![
            generators::complete(12, 1),
            generators::erdos_renyi(15, 15, 0.4, 2),
            generators::regular(12, 4, 3),
            generators::zipf(12, 4, 1.5, 4),
            generators::almost_regular(12, 2, 3.0, 5),
            generators::adversarial_chain(12),
            generators::master_list(12, 6),
        ];
        for inst in instances {
            let gs = man_optimal_stable(&inst);
            assert_eq!(
                count_blocking_pairs(&inst, &gs.matching),
                0,
                "GS must be stable"
            );
        }
    }

    #[test]
    fn man_optimality_on_known_instance() {
        // m0: w0 > w1; m1: w0 > w1; w0: m1 > m0; w1: m1 > m0.
        // Man-optimal: m1-w0 (his top), m0-w1.
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [1, 0])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [0, 1])
            .build()
            .unwrap();
        let ids = inst.ids();
        let gs = man_optimal_stable(&inst);
        assert!(gs.matching.contains_pair(ids.man(1), ids.woman(0)));
        assert!(gs.matching.contains_pair(ids.man(0), ids.woman(1)));
    }

    #[test]
    fn proposal_count_on_master_list_is_quadratic_ish() {
        let n = 16;
        let inst = generators::master_list(n, 3);
        let gs = man_optimal_stable(&inst);
        // Identical lists force Θ(n²) proposals: 1 + 2 + … + n.
        assert_eq!(gs.proposals, (n * (n + 1) / 2) as u64);
    }

    #[test]
    fn chain_instance_resolves_fully() {
        let inst = generators::adversarial_chain(10);
        let gs = man_optimal_stable(&inst);
        // Chain: every woman is matched; man 0 took w0, displacements ended
        // with the last man on his own woman.
        assert_eq!(gs.matching.len(), 10);
        assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
    }

    #[test]
    fn unmatched_players_on_sparse_instance() {
        let inst = generators::erdos_renyi(20, 20, 0.05, 9);
        let gs = man_optimal_stable(&inst);
        assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
        assert!(gs.matching.len() <= 20);
    }

    #[test]
    fn woman_optimal_is_stable_and_dual() {
        for seed in 0..5 {
            let inst = generators::erdos_renyi(12, 12, 0.5, seed);
            let wo = woman_optimal_stable(&inst);
            assert_eq!(count_blocking_pairs(&inst, &wo.matching), 0, "seed {seed}");
            // Lattice duality: women do at least as well as under the
            // man-optimal matching, men at most as well.
            let mo = man_optimal_stable(&inst);
            for w in inst.ids().women() {
                let r_wo = wo.matching.partner(w).map(|p| inst.rank(w, p).unwrap());
                let r_mo = mo.matching.partner(w).map(|p| inst.rank(w, p).unwrap());
                match (r_wo, r_mo) {
                    (Some(a), Some(b)) => assert!(a <= b, "woman {w} worse off"),
                    // The set of matched players is the same in all stable
                    // matchings (Rural Hospitals theorem).
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(3, 3).build().unwrap();
        let gs = man_optimal_stable(&inst);
        assert!(gs.matching.is_empty());
        assert_eq!(gs.proposals, 0);
    }
}
