//! # asm-matching: matchings and stability analysis
//!
//! Matchings over stable-marriage instances and the two approximation
//! notions used in Ostrovsky & Rosenbaum (PODC 2015):
//!
//! * **(1−ε)-stability** (Definition 1, after Eriksson & Häggström): the
//!   matching induces at most `ε·|E|` blocking pairs —
//!   see [`StabilityReport`], [`blocking_pairs`].
//! * **ε-blocking-stability** (Definition 2, after Kipnis & Patt-Shamir):
//!   no pair improves by an ε-fraction of both preference lists —
//!   see [`is_eps_blocking`], [`eps_blocking_pairs`].
//!
//! The crate also provides the centralized extended Gale–Shapley algorithm
//! ([`man_optimal_stable`]) as ground truth (its output is exactly stable)
//! and as the classical baseline the paper's distributed algorithms are
//! measured against.
//!
//! # Examples
//!
//! ```
//! use asm_instance::generators;
//! use asm_matching::{man_optimal_stable, Matching, StabilityReport};
//!
//! let inst = generators::erdos_renyi(20, 20, 0.5, 1);
//! let gs = man_optimal_stable(&inst);
//! let report = StabilityReport::analyze(&inst, &gs.matching);
//! assert!(report.is_stable());
//!
//! // An empty matching is maximally unstable: every edge blocks.
//! let empty = Matching::new(inst.ids().num_players());
//! let bad = StabilityReport::analyze(&inst, &empty);
//! assert_eq!(bad.blocking_pairs, inst.num_edges());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod enumerate;
mod error;
mod gale_shapley;
mod instability;
mod matching;
mod rotations;
mod stability;
mod verify;
mod welfare;

pub use blocking::{
    blocking_pairs, blocking_pairs_with, count_blocking_pairs, count_blocking_pairs_with,
    count_eps_blocking_pairs, count_eps_blocking_pairs_with, effective_rank, eps_blocking_pairs,
    eps_blocking_pairs_with, is_blocking, is_eps_blocking, BlockingScratch,
};
pub use enumerate::enumerate_stable_matchings;
pub use error::MatchingError;
pub use gale_shapley::{man_optimal_stable, woman_optimal_stable, GsOutcome};
pub use instability::InstabilityMeasures;
pub use matching::Matching;
pub use rotations::{eliminate_rotation, exposed_rotation, rotation_chain, Rotation};
pub use stability::{eps_blocking_pairs_excluding, StabilityReport};
pub use verify::{is_maximal, verify_matching};
pub use welfare::WelfareReport;
