//! Blocking pairs and ε-blocking pairs.

use crate::Matching;
use asm_congest::NodeId;
use asm_instance::{Instance, Rank};

/// The *effective rank* of `v`'s current partner: `P_v(p(v))`, with the
/// paper's convention `P_v(∅) = deg(v) + 1` for unmatched players (an
/// unmatched player prefers all acceptable partners to being alone).
///
/// # Panics
///
/// Panics if `v` is matched to an unacceptable partner — run
/// [`crate::verify_matching`] first for untrusted matchings.
pub fn effective_rank(inst: &Instance, matching: &Matching, v: NodeId) -> Rank {
    match matching.partner(v) {
        Some(p) => inst
            .rank(v, p)
            .expect("matched partner must be on the preference list"),
        None => inst.degree(v) as Rank + 1,
    }
}

/// Whether the edge `(man, woman)` is a blocking pair for `matching`:
/// both strictly prefer each other to their assigned partners
/// (Section 2.1).
///
/// Returns `false` for pairs that are not edges or are themselves matched.
pub fn is_blocking(inst: &Instance, matching: &Matching, man: NodeId, woman: NodeId) -> bool {
    let (Some(rank_m), Some(rank_w)) = (inst.rank(man, woman), inst.rank(woman, man)) else {
        return false;
    };
    rank_m < effective_rank(inst, matching, man) && rank_w < effective_rank(inst, matching, woman)
}

/// Whether the edge `(man, woman)` is ε-blocking (Definition 2, from
/// Kipnis & Patt-Shamir): each side improves by at least an ε-fraction of
/// its preference list:
///
/// ```text
/// P_m(p(m)) − P_m(w) ≥ ε · deg(m)   and   P_w(p(w)) − P_w(m) ≥ ε · deg(w)
/// ```
///
/// Returns `false` for non-edges. With `ε = 0` this coincides with
/// [`is_blocking`] on matched-or-better pairs only when the improvement is
/// non-negative; the interesting regime is `ε > 0`, where every ε-blocking
/// pair is in particular blocking.
pub fn is_eps_blocking(
    inst: &Instance,
    matching: &Matching,
    man: NodeId,
    woman: NodeId,
    eps: f64,
) -> bool {
    let (Some(rank_m), Some(rank_w)) = (inst.rank(man, woman), inst.rank(woman, man)) else {
        return false;
    };
    let gain_m = effective_rank(inst, matching, man) as f64 - rank_m as f64;
    let gain_w = effective_rank(inst, matching, woman) as f64 - rank_w as f64;
    gain_m >= eps * inst.degree(man) as f64 && gain_w >= eps * inst.degree(woman) as f64
}

/// Reusable scratch space for blocking-pair computations.
///
/// Every audit needs the effective-rank table `P_v(p(v))` for all
/// players; the one-shot entry points allocate it per call. Hot paths
/// that audit many matchings in sequence (the service worker loop, sweep
/// cells) hold one `BlockingScratch` and call the `*_with` variants so
/// the table's allocation is reused across calls.
///
/// The scratch carries no state between calls — results are identical to
/// the allocating variants (the bench determinism suite pins this).
#[derive(Clone, Debug, Default)]
pub struct BlockingScratch {
    er: Vec<Rank>,
}

impl BlockingScratch {
    /// Creates an empty scratch; the first use sizes it to the instance.
    pub fn new() -> Self {
        BlockingScratch::default()
    }

    /// (Re)fills the effective-rank table for `matching` on `inst`.
    fn fill(&mut self, inst: &Instance, matching: &Matching) -> &[Rank] {
        self.er.clear();
        self.er.extend(
            inst.ids()
                .players()
                .map(|v| effective_rank(inst, matching, v)),
        );
        &self.er
    }
}

/// All blocking pairs of `matching`, as `(man, woman)` edges.
///
/// Runs in `O(|E| log Δ)`.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{blocking_pairs, Matching};
///
/// let inst = generators::complete(4, 1);
/// let empty = Matching::new(inst.ids().num_players());
/// // Under the empty matching every edge is blocking.
/// assert_eq!(blocking_pairs(&inst, &empty).len(), inst.num_edges());
/// ```
pub fn blocking_pairs(inst: &Instance, matching: &Matching) -> Vec<(NodeId, NodeId)> {
    blocking_pairs_with(inst, matching, &mut BlockingScratch::new())
}

/// [`blocking_pairs`] reusing the caller's [`BlockingScratch`].
pub fn blocking_pairs_with(
    inst: &Instance,
    matching: &Matching,
    scratch: &mut BlockingScratch,
) -> Vec<(NodeId, NodeId)> {
    let er = scratch.fill(inst, matching);
    inst.edges()
        .filter(|&(m, w)| {
            let rank_m = inst.rank(m, w).expect("edge implies mutual ranking");
            let rank_w = inst.rank(w, m).expect("edge implies mutual ranking");
            rank_m < er[m.index()] && rank_w < er[w.index()]
        })
        .collect()
}

/// Number of blocking pairs of `matching`.
pub fn count_blocking_pairs(inst: &Instance, matching: &Matching) -> usize {
    count_blocking_pairs_with(inst, matching, &mut BlockingScratch::new())
}

/// [`count_blocking_pairs`] reusing the caller's [`BlockingScratch`];
/// counts without materializing the pair list.
pub fn count_blocking_pairs_with(
    inst: &Instance,
    matching: &Matching,
    scratch: &mut BlockingScratch,
) -> usize {
    let er = scratch.fill(inst, matching);
    inst.edges()
        .filter(|&(m, w)| {
            let rank_m = inst.rank(m, w).expect("edge implies mutual ranking");
            let rank_w = inst.rank(w, m).expect("edge implies mutual ranking");
            rank_m < er[m.index()] && rank_w < er[w.index()]
        })
        .count()
}

/// All ε-blocking pairs (Definition 2) of `matching`, as `(man, woman)`.
pub fn eps_blocking_pairs(inst: &Instance, matching: &Matching, eps: f64) -> Vec<(NodeId, NodeId)> {
    eps_blocking_pairs_with(inst, matching, eps, &mut BlockingScratch::new())
}

/// [`eps_blocking_pairs`] reusing the caller's [`BlockingScratch`].
///
/// The gains are computed from the shared effective-rank table — the same
/// values [`is_eps_blocking`] derives per edge, so the result is
/// identical.
pub fn eps_blocking_pairs_with(
    inst: &Instance,
    matching: &Matching,
    eps: f64,
    scratch: &mut BlockingScratch,
) -> Vec<(NodeId, NodeId)> {
    let er = scratch.fill(inst, matching);
    inst.edges()
        .filter(|&(m, w)| {
            let rank_m = inst.rank(m, w).expect("edge implies mutual ranking");
            let rank_w = inst.rank(w, m).expect("edge implies mutual ranking");
            let gain_m = er[m.index()] as f64 - rank_m as f64;
            let gain_w = er[w.index()] as f64 - rank_w as f64;
            gain_m >= eps * inst.degree(m) as f64 && gain_w >= eps * inst.degree(w) as f64
        })
        .collect()
}

/// Number of ε-blocking pairs of `matching`.
pub fn count_eps_blocking_pairs(inst: &Instance, matching: &Matching, eps: f64) -> usize {
    count_eps_blocking_pairs_with(inst, matching, eps, &mut BlockingScratch::new())
}

/// [`count_eps_blocking_pairs`] reusing the caller's [`BlockingScratch`].
pub fn count_eps_blocking_pairs_with(
    inst: &Instance,
    matching: &Matching,
    eps: f64,
    scratch: &mut BlockingScratch,
) -> usize {
    eps_blocking_pairs_with(inst, matching, eps, scratch).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::InstanceBuilder;

    /// 2 women, 2 men; m0: w0 > w1, m1: w0 > w1, w0: m1 > m0, w1: m1 > m0.
    fn contested() -> Instance {
        InstanceBuilder::new(2, 2)
            .woman(0, [1, 0])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn effective_rank_conventions() {
        let inst = contested();
        let ids = inst.ids();
        let mut m = Matching::new(ids.num_players());
        assert_eq!(effective_rank(&inst, &m, ids.man(0)), 3);
        m.add_pair(ids.man(0), ids.woman(1)).unwrap();
        assert_eq!(effective_rank(&inst, &m, ids.man(0)), 2);
        assert_eq!(effective_rank(&inst, &m, ids.woman(1)), 2);
    }

    #[test]
    fn stable_matching_has_no_blocking_pairs() {
        let inst = contested();
        let ids = inst.ids();
        // m1-w0, m0-w1 is stable (m1 and w0 both get their top choice).
        let mut m = Matching::new(ids.num_players());
        m.add_pair(ids.man(1), ids.woman(0)).unwrap();
        m.add_pair(ids.man(0), ids.woman(1)).unwrap();
        assert!(blocking_pairs(&inst, &m).is_empty());
    }

    #[test]
    fn swapped_matching_is_blocked() {
        let inst = contested();
        let ids = inst.ids();
        // m0-w0, m1-w1: (m1, w0) mutually prefer each other.
        let mut m = Matching::new(ids.num_players());
        m.add_pair(ids.man(0), ids.woman(0)).unwrap();
        m.add_pair(ids.man(1), ids.woman(1)).unwrap();
        let bps = blocking_pairs(&inst, &m);
        assert_eq!(bps, vec![(ids.man(1), ids.woman(0))]);
        assert!(is_blocking(&inst, &m, ids.man(1), ids.woman(0)));
        assert!(!is_blocking(&inst, &m, ids.man(0), ids.woman(1)));
    }

    #[test]
    fn matched_edge_is_never_blocking() {
        let inst = contested();
        let ids = inst.ids();
        let mut m = Matching::new(ids.num_players());
        m.add_pair(ids.man(0), ids.woman(0)).unwrap();
        assert!(!is_blocking(&inst, &m, ids.man(0), ids.woman(0)));
    }

    #[test]
    fn non_edge_is_never_blocking() {
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let m = Matching::new(4);
        assert!(!is_blocking(
            &inst,
            &m,
            inst.ids().man(1),
            inst.ids().woman(1)
        ));
        assert!(!is_eps_blocking(
            &inst,
            &m,
            inst.ids().man(1),
            inst.ids().woman(1),
            0.1
        ));
    }

    #[test]
    fn eps_blocking_thresholds() {
        // Degree-2 lists: improvement from unmatched (rank 3) to rank 1 is
        // a gain of 2 = 1.0 * deg, so it is 1.0-blocking but not 1.1-.
        let inst = contested();
        let ids = inst.ids();
        let m = Matching::new(ids.num_players());
        assert!(is_eps_blocking(&inst, &m, ids.man(1), ids.woman(0), 1.0));
        assert!(!is_eps_blocking(&inst, &m, ids.man(1), ids.woman(0), 1.1));
        // (m0, w0): m0 gains 2 (rank 3 -> 1) but w0 gains only 1 (3 -> 2),
        // i.e. 0.5 * deg.
        assert!(is_eps_blocking(&inst, &m, ids.man(0), ids.woman(0), 0.5));
        assert!(!is_eps_blocking(&inst, &m, ids.man(0), ids.woman(0), 0.75));
    }

    #[test]
    fn eps_blocking_subset_of_blocking() {
        let inst = asm_instance::generators::complete(8, 3);
        let mut m = Matching::new(inst.ids().num_players());
        // Arbitrary half-matching.
        for j in 0..4 {
            m.add_pair(inst.ids().man(j), inst.ids().woman(7 - j))
                .unwrap();
        }
        let blocking = blocking_pairs(&inst, &m);
        for eps in [0.25, 0.5, 1.0] {
            for pair in eps_blocking_pairs(&inst, &m, eps) {
                assert!(blocking.contains(&pair));
            }
        }
        assert!(
            count_eps_blocking_pairs(&inst, &m, 0.25) >= count_eps_blocking_pairs(&inst, &m, 0.5)
        );
    }

    #[test]
    fn scratch_variants_match_allocating_variants() {
        // One scratch reused across many instances and matchings must
        // reproduce the one-shot results exactly.
        let mut scratch = BlockingScratch::new();
        for seed in 0..4 {
            let inst = asm_instance::generators::erdos_renyi(10, 10, 0.5, seed);
            let mut m = Matching::new(inst.ids().num_players());
            for j in 0..5 {
                let (man, woman) = (inst.ids().man(j), inst.ids().woman(9 - j));
                if inst.rank(man, woman).is_some() {
                    m.add_pair(man, woman).unwrap();
                }
            }
            assert_eq!(
                blocking_pairs_with(&inst, &m, &mut scratch),
                blocking_pairs(&inst, &m)
            );
            assert_eq!(
                count_blocking_pairs_with(&inst, &m, &mut scratch),
                blocking_pairs(&inst, &m).len()
            );
            for eps in [0.25, 0.5, 1.0] {
                assert_eq!(
                    eps_blocking_pairs_with(&inst, &m, eps, &mut scratch),
                    eps_blocking_pairs(&inst, &m, eps)
                );
                // The scratch path must agree with the per-edge
                // is_eps_blocking formulation bit-for-bit.
                let per_edge: Vec<_> = inst
                    .edges()
                    .filter(|&(a, b)| is_eps_blocking(&inst, &m, a, b, eps))
                    .collect();
                assert_eq!(
                    eps_blocking_pairs_with(&inst, &m, eps, &mut scratch),
                    per_edge
                );
            }
        }
    }

    #[test]
    fn scratch_resizes_across_instance_sizes() {
        let mut scratch = BlockingScratch::new();
        let big = asm_instance::generators::complete(8, 1);
        let small = contested();
        let big_m = Matching::new(big.ids().num_players());
        let small_m = Matching::new(small.ids().num_players());
        assert_eq!(
            count_blocking_pairs_with(&big, &big_m, &mut scratch),
            big.num_edges()
        );
        // Shrinking must not leave stale ranks behind.
        assert_eq!(count_blocking_pairs_with(&small, &small_m, &mut scratch), 4);
    }

    #[test]
    fn counts_match_lists() {
        let inst = contested();
        let m = Matching::new(inst.ids().num_players());
        assert_eq!(
            count_blocking_pairs(&inst, &m),
            blocking_pairs(&inst, &m).len()
        );
        assert_eq!(count_blocking_pairs(&inst, &m), 4);
    }
}
