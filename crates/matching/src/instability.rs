//! The instability measures used across the almost-stable-matching
//! literature.
//!
//! There is "no consensus in the literature on precisely how to measure
//! almost stability" (Section 1.1); the measures that appear in the
//! paper's discussion are gathered here so experiments can report all of
//! them side by side:
//!
//! * **per edge** (`|BP| / |E|`) — Definition 1, this paper's measure
//!   (after Eriksson & Häggström for complete lists, where `|E| = n²`);
//! * **per possible pair** (`|BP| / (n_men · n_women)`) — Eriksson &
//!   Häggström's original "proportion of blocking pairs among all
//!   possible pairs";
//! * **per matched pair** (`|BP| / |M|`) — Floréen, Kaski, Polishchuk &
//!   Suomela's measure; agrees with the per-edge measure up to a constant
//!   on bounded lists (Remark 1).

use crate::{count_blocking_pairs, Matching};
use asm_instance::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// All instability measures of one matching.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{InstabilityMeasures, Matching};
///
/// let inst = generators::complete(4, 1);
/// let empty = Matching::new(8);
/// let m = InstabilityMeasures::measure(&inst, &empty);
/// assert_eq!(m.blocking_pairs, 16);
/// assert_eq!(m.per_edge, 1.0);
/// assert_eq!(m.per_possible_pair, 1.0);
/// assert!(m.per_matched_pair.is_none()); // |M| = 0
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstabilityMeasures {
    /// Raw blocking-pair count.
    pub blocking_pairs: usize,
    /// `|BP| / |E|` — Definition 1 (0 when `|E| = 0`).
    pub per_edge: f64,
    /// `|BP| / (n_men · n_women)` — Eriksson & Häggström (0 when a side
    /// is empty).
    pub per_possible_pair: f64,
    /// `|BP| / |M|` — Floréen et al.; `None` for an empty matching.
    pub per_matched_pair: Option<f64>,
}

impl InstabilityMeasures {
    /// Computes all measures for `matching` on `inst`.
    pub fn measure(inst: &Instance, matching: &Matching) -> Self {
        let bp = count_blocking_pairs(inst, matching);
        let edges = inst.num_edges();
        let possible = inst.ids().num_men() * inst.ids().num_women();
        let matched = matching.len();
        InstabilityMeasures {
            blocking_pairs: bp,
            per_edge: if edges == 0 {
                0.0
            } else {
                bp as f64 / edges as f64
            },
            per_possible_pair: if possible == 0 {
                0.0
            } else {
                bp as f64 / possible as f64
            },
            per_matched_pair: (matched > 0).then(|| bp as f64 / matched as f64),
        }
    }
}

impl fmt::Display for InstabilityMeasures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocking ({:.4}/edge, {:.4}/pair{})",
            self.blocking_pairs,
            self.per_edge,
            self.per_possible_pair,
            match self.per_matched_pair {
                Some(x) => format!(", {x:.4}/match"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::man_optimal_stable;
    use asm_instance::{generators, InstanceBuilder};

    #[test]
    fn stable_matching_scores_zero_everywhere() {
        let inst = generators::erdos_renyi(12, 12, 0.5, 3);
        let gs = man_optimal_stable(&inst);
        let m = InstabilityMeasures::measure(&inst, &gs.matching);
        assert_eq!(m.blocking_pairs, 0);
        assert_eq!(m.per_edge, 0.0);
        assert_eq!(m.per_possible_pair, 0.0);
        assert_eq!(m.per_matched_pair, Some(0.0));
    }

    #[test]
    fn complete_lists_make_the_first_two_measures_agree() {
        // Remark 1 territory: with complete lists |E| = n², so per-edge
        // and per-possible-pair coincide exactly.
        let inst = generators::complete(6, 2);
        let empty = Matching::new(12);
        let m = InstabilityMeasures::measure(&inst, &empty);
        assert_eq!(m.per_edge, m.per_possible_pair);
    }

    #[test]
    fn bounded_lists_measures_differ_by_density() {
        let inst = generators::regular(10, 3, 5);
        let empty = Matching::new(20);
        let m = InstabilityMeasures::measure(&inst, &empty);
        assert_eq!(m.per_edge, 1.0);
        assert!((m.per_possible_pair - 0.3).abs() < 1e-12, "30/100");
    }

    #[test]
    fn empty_instance_is_vacuously_stable() {
        let inst = InstanceBuilder::new(0, 0).build().unwrap();
        let m = InstabilityMeasures::measure(&inst, &Matching::new(0));
        assert_eq!(m.per_edge, 0.0);
        assert_eq!(m.per_possible_pair, 0.0);
        assert!(m.per_matched_pair.is_none());
    }

    #[test]
    fn display_is_informative() {
        let inst = generators::complete(3, 1);
        let m = InstabilityMeasures::measure(&inst, &Matching::new(6));
        assert!(m.to_string().contains("9 blocking"));
    }
}
