//! Welfare measures of matchings.
//!
//! Stability is the paper's objective, but downstream users of matching
//! systems also care *how good* the assigned partners are. These measures
//! quantify that: rank-based costs in the tradition of Gusfield & Irving
//! (egalitarian cost, regret) plus per-side means, letting experiments
//! report what the ε-relaxation costs in welfare.

use crate::Matching;
use asm_instance::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Rank-based welfare summary of a matching.
///
/// Ranks are 1-based (1 = most favored). Unmatched players with a nonempty
/// list are charged rank `deg + 1` — the same convention the blocking-pair
/// analysis uses; players with empty lists are skipped entirely.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{man_optimal_stable, WelfareReport};
///
/// let inst = generators::complete(16, 3);
/// let gs = man_optimal_stable(&inst);
/// let w = WelfareReport::measure(&inst, &gs.matching);
/// // Man-optimal: men do at least as well as women on average.
/// assert!(w.men_mean_rank <= w.women_mean_rank);
/// assert!(w.egalitarian_cost > 0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WelfareReport {
    /// Sum of all matched players' partner ranks plus the `deg + 1`
    /// charges of unmatched players (the *egalitarian cost*).
    pub egalitarian_cost: u64,
    /// Mean partner rank over men with nonempty lists.
    pub men_mean_rank: f64,
    /// Mean partner rank over women with nonempty lists.
    pub women_mean_rank: f64,
    /// The worst partner rank any matched player received (*regret*).
    pub regret: u32,
    /// Absolute difference of the two side sums (*sex-equality cost*).
    pub sex_equality_cost: u64,
    /// Players counted (nonempty preference lists).
    pub players_counted: usize,
}

impl WelfareReport {
    /// Measures `matching` against `inst`.
    ///
    /// # Panics
    ///
    /// Panics if a matched pair is not mutually acceptable — run
    /// [`crate::verify_matching`] first for untrusted matchings.
    pub fn measure(inst: &Instance, matching: &Matching) -> Self {
        let ids = inst.ids();
        let mut regret: u32 = 0;
        let mut sums = [0u64; 2]; // [women, men]
        let mut counts = [0usize; 2];
        for v in ids.players() {
            let deg = inst.degree(v);
            if deg == 0 {
                continue;
            }
            let side = usize::from(ids.is_man(v));
            counts[side] += 1;
            let rank = match matching.partner(v) {
                Some(p) => {
                    let r = inst.rank(v, p).expect("matched partner must be acceptable");
                    regret = regret.max(r);
                    r
                }
                None => deg as u32 + 1,
            };
            sums[side] += u64::from(rank);
        }
        let mean = |side: usize| {
            if counts[side] == 0 {
                0.0
            } else {
                sums[side] as f64 / counts[side] as f64
            }
        };
        WelfareReport {
            egalitarian_cost: sums[0] + sums[1],
            men_mean_rank: mean(1),
            women_mean_rank: mean(0),
            regret,
            sex_equality_cost: sums[0].abs_diff(sums[1]),
            players_counted: counts[0] + counts[1],
        }
    }
}

impl fmt::Display for WelfareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "egalitarian {}, men mean {:.2}, women mean {:.2}, regret {}",
            self.egalitarian_cost, self.men_mean_rank, self.women_mean_rank, self.regret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::man_optimal_stable;
    use asm_congest::NodeId;
    use asm_instance::{generators, InstanceBuilder};

    #[test]
    fn perfect_first_choice_matching() {
        // Everyone gets their top pick.
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [0, 1])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [1, 0])
            .build()
            .unwrap();
        let gs = man_optimal_stable(&inst);
        let w = WelfareReport::measure(&inst, &gs.matching);
        assert_eq!(w.egalitarian_cost, 4);
        assert_eq!(w.men_mean_rank, 1.0);
        assert_eq!(w.women_mean_rank, 1.0);
        assert_eq!(w.regret, 1);
        assert_eq!(w.sex_equality_cost, 0);
    }

    #[test]
    fn unmatched_players_are_charged() {
        let inst = InstanceBuilder::new(1, 1)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let empty = Matching::new(2);
        let w = WelfareReport::measure(&inst, &empty);
        assert_eq!(w.egalitarian_cost, 4); // (1+1) + (1+1)
        assert_eq!(w.regret, 0, "nobody matched, no realized rank");
    }

    #[test]
    fn isolated_players_skipped() {
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let mut m = Matching::new(4);
        m.add_pair(inst.ids().man(0), inst.ids().woman(0)).unwrap();
        let w = WelfareReport::measure(&inst, &m);
        assert_eq!(w.players_counted, 2);
        assert_eq!(w.egalitarian_cost, 2);
    }

    #[test]
    fn man_optimality_reflected_in_means() {
        let inst = generators::complete(32, 11);
        let gs = man_optimal_stable(&inst);
        let w = WelfareReport::measure(&inst, &gs.matching);
        assert!(
            w.men_mean_rank <= w.women_mean_rank,
            "man-optimal must favor men: {w}"
        );
    }

    #[test]
    fn regret_bounded_by_degree() {
        let inst = generators::regular(20, 5, 7);
        let gs = man_optimal_stable(&inst);
        let w = WelfareReport::measure(&inst, &gs.matching);
        assert!(w.regret <= 5);
    }

    #[test]
    #[should_panic(expected = "acceptable")]
    fn unacceptable_pair_panics() {
        let inst = InstanceBuilder::new(2, 2)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let mut m = Matching::new(4);
        m.add_pair(NodeId::new(1), NodeId::new(2)).unwrap(); // w1-m0 not an edge
        let _ = WelfareReport::measure(&inst, &m);
    }
}
