//! Stability reports: Definition 1 ((1−ε)-stability) and Definition 2
//! (ε-blocking-stability) in one audit.

use crate::{count_blocking_pairs_with, eps_blocking_pairs, BlockingScratch, Matching};
use asm_congest::NodeId;
use asm_instance::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of auditing a matching against an instance.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{man_optimal_stable, StabilityReport};
///
/// let inst = generators::complete(16, 3);
/// let gs = man_optimal_stable(&inst);
/// let report = StabilityReport::analyze(&inst, &gs.matching);
/// assert_eq!(report.blocking_pairs, 0);
/// assert!(report.is_stable());
/// assert!(report.is_one_minus_eps_stable(0.0));
/// assert_eq!(report.matching_size, 16);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// `|E|` of the instance (the denominator of Definition 1).
    pub num_edges: usize,
    /// Number of matched pairs `|M|`.
    pub matching_size: usize,
    /// Number of blocking pairs induced by the matching.
    pub blocking_pairs: usize,
    /// Number of unmatched men.
    pub unmatched_men: usize,
    /// Number of unmatched women.
    pub unmatched_women: usize,
}

impl StabilityReport {
    /// Audits `matching` against `inst`.
    pub fn analyze(inst: &Instance, matching: &Matching) -> Self {
        Self::analyze_with(inst, matching, &mut BlockingScratch::new())
    }

    /// [`analyze`](StabilityReport::analyze) reusing the caller's
    /// [`BlockingScratch`] — for hot loops auditing many matchings.
    pub fn analyze_with(
        inst: &Instance,
        matching: &Matching,
        scratch: &mut BlockingScratch,
    ) -> Self {
        let ids = inst.ids();
        StabilityReport {
            num_edges: inst.num_edges(),
            matching_size: matching.len(),
            blocking_pairs: count_blocking_pairs_with(inst, matching, scratch),
            unmatched_men: ids.men().filter(|&m| !matching.is_matched(m)).count(),
            unmatched_women: ids.women().filter(|&w| !matching.is_matched(w)).count(),
        }
    }

    /// The instability measure of Definition 1: blocking pairs per edge.
    ///
    /// Returns 0 for an edgeless instance (vacuously stable).
    pub fn blocking_fraction(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.blocking_pairs as f64 / self.num_edges as f64
        }
    }

    /// Whether the matching is (1−ε)-stable: at most `ε·|E|` blocking pairs
    /// (Definition 1).
    pub fn is_one_minus_eps_stable(&self, eps: f64) -> bool {
        self.blocking_pairs as f64 <= eps * self.num_edges as f64
    }

    /// Whether the matching is stable in the classical sense (1-stable).
    pub fn is_stable(&self) -> bool {
        self.blocking_pairs == 0
    }
}

impl fmt::Display for StabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|M|={}, blocking {}/{} ({:.4})",
            self.matching_size,
            self.blocking_pairs,
            self.num_edges,
            self.blocking_fraction()
        )
    }
}

/// Audits ε-blocking-stability (Definition 2) after excluding a set of men
/// — the operation behind Remark 2: "after removing an arbitrarily small
/// fraction of bad men, the output of ASM is almost stable in the sense of
/// \[9\] as well".
///
/// Returns the ε-blocking pairs whose man is **not** excluded.
pub fn eps_blocking_pairs_excluding(
    inst: &Instance,
    matching: &Matching,
    eps: f64,
    excluded_men: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    eps_blocking_pairs(inst, matching, eps)
        .into_iter()
        .filter(|(m, _)| !excluded_men.contains(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::InstanceBuilder;

    fn inst_2x2() -> Instance {
        InstanceBuilder::new(2, 2)
            .woman(0, [1, 0])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_matching_report() {
        let inst = inst_2x2();
        let m = Matching::new(4);
        let r = StabilityReport::analyze(&inst, &m);
        assert_eq!(r.matching_size, 0);
        assert_eq!(r.blocking_pairs, 4);
        assert_eq!(r.blocking_fraction(), 1.0);
        assert!(!r.is_stable());
        assert!(r.is_one_minus_eps_stable(1.0));
        assert!(!r.is_one_minus_eps_stable(0.9));
        assert_eq!(r.unmatched_men, 2);
        assert_eq!(r.unmatched_women, 2);
    }

    #[test]
    fn edgeless_instance_is_vacuously_stable() {
        let inst = InstanceBuilder::new(1, 1).build().unwrap();
        let r = StabilityReport::analyze(&inst, &Matching::new(2));
        assert_eq!(r.blocking_fraction(), 0.0);
        assert!(r.is_stable());
        assert!(r.is_one_minus_eps_stable(0.0));
    }

    #[test]
    fn excluding_the_blocking_man_clears_pairs() {
        let inst = inst_2x2();
        let ids = inst.ids();
        let mut m = Matching::new(4);
        m.add_pair(ids.man(0), ids.woman(0)).unwrap();
        m.add_pair(ids.man(1), ids.woman(1)).unwrap();
        // (m1, w0) blocks; both gain 1 rank = 0.5 deg.
        let with = eps_blocking_pairs_excluding(&inst, &m, 0.5, &[]);
        assert_eq!(with.len(), 1);
        let without = eps_blocking_pairs_excluding(&inst, &m, 0.5, &[ids.man(1)]);
        assert!(without.is_empty());
    }

    #[test]
    fn display_shows_fraction() {
        let inst = inst_2x2();
        let r = StabilityReport::analyze(&inst, &Matching::new(4));
        assert!(r.to_string().contains("4/4"));
    }
}
