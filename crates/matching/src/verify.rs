//! Matching validity checks against an instance.

use crate::{Matching, MatchingError};
use asm_congest::NodeId;
use asm_instance::Instance;

/// Verifies that `matching` is a valid matching *for `inst`*: the partner
/// table covers exactly the instance's players and is structurally sound
/// (symmetric, no self-pairs), and every matched pair is a mutually
/// acceptable man–woman edge.
///
/// [`Matching::add_pair`] maintains the structural conditions, but a
/// deserialized matching (e.g. from the CLI's `--matching` file) bypasses
/// it, so they are re-checked here rather than assumed.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Examples
///
/// ```
/// use asm_instance::generators;
/// use asm_matching::{man_optimal_stable, verify_matching};
///
/// let inst = generators::regular(8, 3, 1);
/// let gs = man_optimal_stable(&inst);
/// verify_matching(&inst, &gs.matching)?;
/// # Ok::<(), asm_matching::MatchingError>(())
/// ```
pub fn verify_matching(inst: &Instance, matching: &Matching) -> Result<(), MatchingError> {
    let ids = inst.ids();
    if matching.num_nodes() != ids.num_players() {
        return Err(MatchingError::SizeMismatch {
            nodes: matching.num_nodes(),
            players: ids.num_players(),
        });
    }
    for v in (0..matching.num_nodes()).map(|i| NodeId::new(i as u32)) {
        let Some(p) = matching.partner(v) else {
            continue;
        };
        if p.index() >= matching.num_nodes() {
            return Err(MatchingError::OutOfRange {
                node: p,
                nodes: matching.num_nodes(),
            });
        }
        if p == v {
            return Err(MatchingError::SelfPair { node: v });
        }
        if matching.partner(p) != Some(v) {
            return Err(MatchingError::Asymmetric {
                node: v,
                partner: p,
            });
        }
    }
    for (u, v) in matching.pairs() {
        if ids.gender(u) == ids.gender(v) {
            return Err(MatchingError::SameGenderPair { u, v });
        }
        if inst.rank(u, v).is_none() || inst.rank(v, u).is_none() {
            return Err(MatchingError::NotAnEdge { u, v });
        }
    }
    Ok(())
}

/// Whether `matching` is maximal with respect to the instance's edge set:
/// no edge has both endpoints unmatched (Definition 3 specialized to the
/// communication graph).
pub fn is_maximal(inst: &Instance, matching: &Matching) -> bool {
    inst.edges()
        .all(|(m, w)| matching.is_matched(m) || matching.is_matched(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_congest::NodeId;
    use asm_instance::InstanceBuilder;

    fn inst() -> Instance {
        InstanceBuilder::new(2, 2)
            .woman(0, [0])
            .woman(1, [0, 1])
            .man(0, [0, 1])
            .man(1, [1])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_matching_passes() {
        let i = inst();
        let ids = i.ids();
        let mut m = Matching::new(4);
        m.add_pair(ids.man(0), ids.woman(0)).unwrap();
        m.add_pair(ids.man(1), ids.woman(1)).unwrap();
        verify_matching(&i, &m).unwrap();
        assert!(is_maximal(&i, &m));
    }

    #[test]
    fn non_edge_pair_rejected() {
        let i = inst();
        let ids = i.ids();
        let mut m = Matching::new(4);
        // (m1, w0) is not an edge.
        m.add_pair(ids.man(1), ids.woman(0)).unwrap();
        assert!(matches!(
            verify_matching(&i, &m),
            Err(MatchingError::NotAnEdge { .. })
        ));
    }

    #[test]
    fn same_gender_pair_rejected() {
        let i = inst();
        let ids = i.ids();
        let mut m = Matching::new(4);
        m.add_pair(ids.woman(0), ids.woman(1)).unwrap();
        assert!(matches!(
            verify_matching(&i, &m),
            Err(MatchingError::SameGenderPair { .. })
        ));
    }

    #[test]
    fn oversized_matching_node_rejected() {
        let i = inst();
        let mut m = Matching::new(10);
        m.add_pair(NodeId::new(0), NodeId::new(9)).unwrap();
        assert!(matches!(
            verify_matching(&i, &m),
            Err(MatchingError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn deserialized_self_pair_rejected() {
        // A self-pair cannot be built through add_pair, but a
        // deserialized partner table can carry one.
        let i = inst();
        let m: Matching = serde_json::from_str("{\"partner\":[0,null,null,null]}").unwrap();
        assert!(matches!(
            verify_matching(&i, &m),
            Err(MatchingError::SelfPair { .. })
        ));
    }

    #[test]
    fn deserialized_asymmetric_table_rejected() {
        let i = inst();
        let m: Matching = serde_json::from_str("{\"partner\":[2,null,null,null]}").unwrap();
        assert!(matches!(
            verify_matching(&i, &m),
            Err(MatchingError::Asymmetric { .. })
        ));
    }

    #[test]
    fn empty_matching_not_maximal_when_edges_exist() {
        let i = inst();
        let m = Matching::new(4);
        assert!(verify_matching(&i, &m).is_ok());
        assert!(!is_maximal(&i, &m));
    }

    #[test]
    fn partial_but_maximal() {
        // Single edge instance: matching it is maximal.
        let i = InstanceBuilder::new(1, 1)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let mut m = Matching::new(2);
        m.add_pair(i.ids().man(0), i.ids().woman(0)).unwrap();
        assert!(is_maximal(&i, &m));
    }
}
