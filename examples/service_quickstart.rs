//! Service quickstart: embed `asm-service`, speak the wire protocol,
//! and reconcile the books.
//!
//! Run with: `cargo run --release --example service_quickstart`
//!
//! The same protocol is served by `asm serve` as a standalone process;
//! see docs/PROTOCOLS.md ("The asm-service line protocol") and the
//! `loadgen` binary in `asm-bench` for driving it at scale.

use asm_service::{serve, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-process server on an OS-assigned port, two workers.
    let handle = serve(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )?;
    println!("serving on {}", handle.addr());

    let stream = TcpStream::connect(handle.addr())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut exchange = |line: &str| -> std::io::Result<String> {
        writeln!(writer, "{line}")?;
        writer.flush()?;
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        Ok(reply.trim_end().to_string())
    };

    // Solve a generator-described instance twice: the second reply comes
    // from the result cache ("cached":true) without re-running ASM.
    let solve = r#"{"id":1,"op":"solve","body":{"instance":{"Generator":{"Regular":{"n":64,"d":8,"seed":7}}},"algorithm":"asm","eps":0.25,"delta":0.1,"seed":42,"backend":"greedy","deadline_ms":0,"cycles":0}}"#;
    let first = exchange(solve)?;
    let second = exchange(&solve.replacen("\"id\":1", "\"id\":2", 1))?;
    assert!(first.contains("\"reply\":\"solved\""), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");
    assert!(second.contains("\"cached\":true"), "{second}");
    println!("solved once, answered twice (second from cache)");

    // The metrics snapshot accounts for exactly what we sent.
    let metrics = exchange(r#"{"id":3,"op":"metrics"}"#)?;
    assert!(metrics.contains("\"solved\":2"), "{metrics}");
    assert!(metrics.contains("\"cache_hits\":1"), "{metrics}");
    println!("metrics reconcile: 2 solved, 1 cache hit");

    // Graceful shutdown: the reply is acknowledged, accepted work drains,
    // and wait() returns the number of frames served.
    let bye = exchange(r#"{"id":4,"op":"shutdown"}"#)?;
    assert!(bye.contains("\"reply\":\"shutting_down\""), "{bye}");
    let served = handle.wait();
    println!("drained after {served} frames");
    assert_eq!(served, 4);
    Ok(())
}
