//! Ride hailing: latency-critical matching with `AlmostRegularASM`.
//!
//! Drivers (men) and riders (women) each rank a bounded set of nearby
//! counterparts. Bounded preference lists are α-almost-regular, so
//! Theorem 6 applies: a (1−ε)-stable assignment in a number of
//! communication rounds **independent of the city size** — exactly what a
//! dispatch system needs. We sweep city sizes and show the round count
//! stays flat while Gale–Shapley's grows.
//!
//! Run with: `cargo run --release --example ride_hailing`

use almost_stable::{
    almost_regular_asm, distributed_gs, generators, AlmostRegularParams, StabilityReport,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eps = 1.0;
    let delta = 0.1;
    println!("dispatch quality target: at most {eps} * |E| blocking pairs, 90% confidence");
    println!();
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10}",
        "city n", "|E|", "ARASM rounds", "ARASM nominal", "GS rounds", "blocking"
    );

    for n in [100usize, 200, 400, 800] {
        // Each driver sees the 8 nearest riders (d-regular bounded lists).
        let inst = generators::regular(n, 8, n as u64);
        let params = AlmostRegularParams::new(eps, delta).with_seed(17);
        let report = almost_regular_asm(&inst, &params)?;
        let stability = StabilityReport::analyze(&inst, &report.matching);
        let gs = distributed_gs(&inst);
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10}",
            n,
            inst.num_edges(),
            report.rounds,
            report.nominal_rounds,
            gs.rounds,
            format!("{}/{}", stability.blocking_pairs, stability.num_edges),
        );
        assert!(stability.is_one_minus_eps_stable(eps));
    }

    println!();
    println!(
        "AlmostRegularASM's nominal schedule is the same at every city size\n\
         (Theorem 6: rounds depend on alpha, eps, delta — not on n)."
    );
    Ok(())
}
