//! Residency match: capacitated (hospitals/residents) assignment via the
//! cloning reduction, solved almost-stably with ASM.
//!
//! Hospitals have multiple beds; residents rank hospitals. Cloning each
//! hospital into capacity-many slots turns this into the one-to-one
//! problem the paper solves; stable (and almost stable) matchings
//! translate back. We build a synthetic match with skewed hospital
//! popularity and compare ASM against exact Gale–Shapley.
//!
//! Run with: `cargo run --release --example residency_match`

use almost_stable::{asm, man_optimal_stable, AsmConfig, SplitRng, StabilityReport};
use asm_instance::HospitalResidents;
use std::collections::HashMap;

#[allow(clippy::needless_range_loop)] // hospitals indexed by id throughout
fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 120 residents, 12 hospitals with 4-16 beds, popularity-skewed
    // application lists of ~6 hospitals each.
    let num_residents = 120;
    let num_hospitals = 12;
    let mut rng = SplitRng::new(2026);

    let capacities: Vec<usize> = (0..num_hospitals).map(|_| 4 + rng.next_range(13)).collect();
    // Resident r applies to 6 hospitals, weighted toward low indices.
    let mut resident_prefs: Vec<Vec<usize>> = Vec::new();
    for _ in 0..num_residents {
        let mut prefs = Vec::new();
        while prefs.len() < 6 {
            let h = rng.next_range(num_hospitals * (num_hospitals + 1) / 2);
            // Triangular weights: hospital 0 most popular.
            let mut acc = 0;
            let mut chosen = 0;
            for cand in 0..num_hospitals {
                acc += num_hospitals - cand;
                if h < acc {
                    chosen = cand;
                    break;
                }
            }
            if !prefs.contains(&chosen) {
                prefs.push(chosen);
            }
        }
        resident_prefs.push(prefs);
    }
    // Hospitals rank their applicants in random order.
    let mut hospital_prefs: Vec<Vec<usize>> = vec![Vec::new(); num_hospitals];
    for (r, prefs) in resident_prefs.iter().enumerate() {
        for &h in prefs {
            hospital_prefs[h].push(r);
        }
    }
    for list in &mut hospital_prefs {
        rng.shuffle(list);
    }

    let hr = HospitalResidents {
        resident_prefs,
        hospital_prefs,
        capacities: capacities.clone(),
    };
    let (inst, slots) = hr.to_instance()?;
    println!(
        "match: {} residents, {} hospitals, {} beds, {} application edges",
        num_residents,
        num_hospitals,
        slots.num_slots(),
        inst.num_edges()
    );

    let fill_counts = |matching: &almost_stable::Matching| -> HashMap<usize, usize> {
        let mut fills: HashMap<usize, usize> = HashMap::new();
        for s in 0..slots.num_slots() {
            if matching.is_matched(inst.ids().woman(s)) {
                *fills.entry(slots.hospital_of(s)).or_default() += 1;
            }
        }
        fills
    };

    let gs = man_optimal_stable(&inst);
    let asm_report = asm(&inst, &AsmConfig::new(0.5))?;
    let asm_st = StabilityReport::analyze(&inst, &asm_report.matching);

    println!("\nexact GS   : {} residents placed", gs.matching.len());
    println!(
        "ASM eps=0.5: {} residents placed, {} blocking / {} edges, {} rounds",
        asm_report.matching.len(),
        asm_st.blocking_pairs,
        asm_st.num_edges,
        asm_report.rounds
    );

    println!("\nper-hospital fill (capacity):");
    let gs_fill = fill_counts(&gs.matching);
    let asm_fill = fill_counts(&asm_report.matching);
    for h in 0..num_hospitals {
        println!(
            "  hospital {h:2}: GS {:2}/{:2}   ASM {:2}/{:2}",
            gs_fill.get(&h).unwrap_or(&0),
            capacities[h],
            asm_fill.get(&h).unwrap_or(&0),
            capacities[h],
        );
        assert!(*asm_fill.get(&h).unwrap_or(&0) <= capacities[h]);
    }
    assert!(asm_st.is_one_minus_eps_stable(0.5));
    Ok(())
}
