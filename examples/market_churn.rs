//! Market churn: re-matching as participants come and go.
//!
//! Real matching markets are not one-shot: participants join and leave.
//! A round-cheap algorithm makes periodic *full* re-matching affordable.
//! This example evolves an incomplete market through churn epochs (each
//! epoch replaces 10% of the players' preference lists), re-runs ASM from
//! scratch each epoch, and tracks rounds, stability, and how much of the
//! matching survives between epochs.
//!
//! Run with: `cargo run --release --example market_churn`

use almost_stable::{
    asm, generators, AsmConfig, Instance, InstanceBuilder, MatcherBackend, Matching, SplitRng,
    StabilityReport,
};

/// Rewires `fraction` of the men to fresh uniformly random lists of the
/// same length, keeping everything else intact.
fn churn(inst: &Instance, fraction: f64, rng: &mut SplitRng) -> Instance {
    let ids = inst.ids();
    let n = ids.num_women();
    let mut builder = InstanceBuilder::new(n, ids.num_men());
    // Start from the current men's adjacency.
    let mut men_lists: Vec<Vec<usize>> = ids
        .men()
        .map(|m| {
            inst.prefs(m)
                .ranked()
                .iter()
                .map(|w| ids.side_index(*w))
                .collect()
        })
        .collect();
    for list in men_lists.iter_mut() {
        if rng.next_bool(fraction) {
            let d = list.len().max(1).min(n);
            let mut pool: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut pool);
            *list = pool[..d].to_vec();
        }
    }
    // Women keep their existing relative order for men who still list
    // them; men who newly list them are inserted at random positions.
    let mut listed_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, list) in men_lists.iter().enumerate() {
        for &i in list {
            listed_by[i].push(j);
        }
    }
    for (i, now) in listed_by.into_iter().enumerate() {
        let w = ids.woman(i);
        let mut list: Vec<usize> = inst
            .prefs(w)
            .ranked()
            .iter()
            .map(|m| ids.side_index(*m))
            .filter(|j| now.contains(j))
            .collect();
        for j in now {
            if !list.contains(&j) {
                let pos = rng.next_range(list.len() + 1);
                list.insert(pos, j);
            }
        }
        builder = builder.woman(i, list);
    }
    for (j, list) in men_lists.into_iter().enumerate() {
        builder = builder.man(j, list);
    }
    builder.build().expect("churn preserves symmetry")
}

fn overlap(a: &Matching, b: &Matching, ids: &asm_instance::IdSpace) -> f64 {
    let same = ids
        .women()
        .filter(|&w| a.partner(w).is_some() && a.partner(w) == b.partner(w))
        .count();
    same as f64 / a.len().max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SplitRng::new(4242);
    let mut inst = generators::regular(300, 10, 1);
    let config = AsmConfig::new(0.5).with_backend(MatcherBackend::DetGreedy);
    let mut previous: Option<Matching> = None;

    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>14}",
        "epoch", "|E|", "rounds", "|M|", "blocking", "kept pairs"
    );
    for epoch in 0..8 {
        let report = asm(&inst, &config)?;
        let st = StabilityReport::analyze(&inst, &report.matching);
        assert!(st.is_one_minus_eps_stable(0.5));
        let kept = previous
            .as_ref()
            .map(|p| format!("{:.0}%", 100.0 * overlap(p, &report.matching, inst.ids())))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>10} {:>14}",
            epoch,
            inst.num_edges(),
            report.rounds,
            report.matching.len(),
            st.blocking_pairs,
            kept
        );
        previous = Some(report.matching);
        inst = churn(&inst, 0.10, &mut rng);
    }

    println!(
        "\n10% of men rewire their preferences each epoch; full re-matching\n\
         stays around a hundred effective rounds per epoch while ~60-70% of\n\
         pairs persist — periodic global re-solves are affordable exactly\n\
         because ASM's rounds do not scale with market size. (The churn\n\
         ripples: one rewired man can displace a chain of others, so more\n\
         than 10% of pairs change.)"
    );
    Ok(())
}
