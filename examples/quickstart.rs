//! Quickstart: find an almost stable matching and audit it.
//!
//! Run with: `cargo run --release --example quickstart`

use almost_stable::{asm, generators, AsmConfig, InstanceMetrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A market of 200 men and 200 women; everyone ranks everyone.
    let inst = generators::complete(200, 42);
    println!("instance: {}", InstanceMetrics::measure(&inst));

    // ASM with a 25% blocking-edge budget (paper parameters: k = 32
    // quantiles, delta = 1/32).
    let eps = 0.25;
    let report = asm(&inst, &AsmConfig::new(eps))?;
    let stability = report.stability(&inst);

    println!("matching size      : {}", report.matching.len());
    println!("effective rounds   : {}", report.rounds);
    println!("nominal rounds     : {}", report.nominal_rounds);
    println!(
        "blocking pairs     : {} / {} edges ({:.4} of budget {:.2})",
        stability.blocking_pairs,
        stability.num_edges,
        stability.blocking_fraction(),
        eps
    );
    println!(
        "good men           : {} / {}",
        report.good_men,
        inst.ids().num_men()
    );
    assert!(stability.is_one_minus_eps_stable(eps));
    println!("=> the matching is (1 - {eps})-stable, as Theorem 3 guarantees");
    Ok(())
}
