//! Social-network matching: the paper's motivating scenario.
//!
//! Players may only be matched with acquaintances (Section 1.1: "social
//! networks where players may be constrained to be matched with
//! acquaintances and do not communicate with strangers"). We model an
//! acquaintance graph with popularity skew (a few universally known
//! players, many niche ones) and compare ASM against full Gale–Shapley on
//! rounds and stability.
//!
//! Run with: `cargo run --release --example social_network`

use almost_stable::{
    asm, distributed_gs, generators, AsmConfig, InstanceMetrics, MatcherBackend, StabilityReport,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500;
    let degree = 12;
    let skew = 1.2;
    let inst = generators::zipf(n, degree, skew, 7);
    println!("acquaintance market: {}", InstanceMetrics::measure(&inst));
    println!();

    // Full distributed Gale-Shapley: exactly stable, but serial cascades.
    let gs = distributed_gs(&inst);
    let gs_stability = StabilityReport::analyze(&inst, &gs.matching);
    println!("distributed Gale-Shapley (exact baseline):");
    println!("  rounds          : {}", gs.rounds);
    println!("  matching size   : {}", gs.matching.len());
    println!("  blocking pairs  : {}", gs_stability.blocking_pairs);
    println!();

    // ASM with a real message-passing deterministic matcher.
    for eps in [1.0, 0.5, 0.25] {
        let config = AsmConfig::new(eps).with_backend(MatcherBackend::DetGreedy);
        let report = asm(&inst, &config)?;
        let stability = report.stability(&inst);
        println!("ASM eps = {eps}:");
        println!("  effective rounds: {}", report.rounds);
        println!("  matching size   : {}", report.matching.len());
        println!(
            "  blocking pairs  : {} / {} ({:.4}, budget {:.2})",
            stability.blocking_pairs,
            stability.num_edges,
            stability.blocking_fraction(),
            eps
        );
        assert!(stability.is_one_minus_eps_stable(eps));
        println!();
    }

    println!(
        "note: ASM trades a bounded fraction of blocking pairs for round\n\
         counts that scale polylogarithmically instead of with the longest\n\
         rejection cascade."
    );
    Ok(())
}
