//! Welfare trade-off: what does the ε-relaxation cost the participants?
//!
//! Stability is ASM's guarantee, but a market operator also cares how
//! *good* the assigned partners are. This example sweeps ε and compares
//! ASM's rank-based welfare against the two stable optima (man- and
//! woman-optimal Gale–Shapley), which bracket every stable matching.
//!
//! Run with: `cargo run --release --example welfare_tradeoff`

use almost_stable::{asm, generators, man_optimal_stable, AsmConfig, StabilityReport};
use asm_matching::{woman_optimal_stable, WelfareReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = generators::complete(150, 4);
    println!("complete market, n = 150\n");
    println!(
        "{:>16} {:>12} {:>9} {:>11} {:>7} {:>10}",
        "algorithm", "egalitarian", "men mean", "women mean", "regret", "blocking"
    );

    let show = |name: &str, matching: &almost_stable::Matching| {
        let w = WelfareReport::measure(&inst, matching);
        let st = StabilityReport::analyze(&inst, matching);
        println!(
            "{:>16} {:>12} {:>9.2} {:>11.2} {:>7} {:>10.4}",
            name,
            w.egalitarian_cost,
            w.men_mean_rank,
            w.women_mean_rank,
            w.regret,
            st.blocking_fraction()
        );
    };

    show("gs man-optimal", &man_optimal_stable(&inst).matching);
    show("gs woman-opt", &woman_optimal_stable(&inst).matching);
    for eps in [2.0, 1.0, 0.5, 0.25] {
        let report = asm(&inst, &AsmConfig::new(eps))?;
        show(&format!("asm eps={eps}"), &report.matching);
    }

    println!(
        "\nObservations: shrinking eps drives the men's mean rank toward the\n\
         man-optimal value as ASM converges to Gale-Shapley-like behavior,\n\
         and the blocking fraction toward zero. Notably, ASM's egalitarian\n\
         cost can dip BELOW both stable optima: tolerating a few blocking\n\
         pairs buys aggregate welfare no stable matching can achieve - the\n\
         classical price-of-stability effect, visible here empirically."
    );
    Ok(())
}
