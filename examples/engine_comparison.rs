//! Engine fidelity demo: the message-passing CONGEST engine and the fast
//! vector engine execute the same algorithm and produce the same matching.
//!
//! The CONGEST engine really delivers O(log n)-bit messages along the
//! communication graph's edges (the network errors out on any violation);
//! the fast engine simulates the identical schedule on vectors. Both draw
//! randomness through the same splittable streams, so even the randomized
//! variant agrees bit-for-bit.
//!
//! Run with: `cargo run --release --example engine_comparison`

use almost_stable::core::congest::asm_congest;
use almost_stable::{asm, generators, AsmConfig, MatcherBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = generators::erdos_renyi(60, 60, 0.2, 99);
    println!(
        "instance: {} players, {} edges",
        inst.ids().num_players(),
        inst.num_edges()
    );

    for (name, backend) in [
        ("deterministic greedy", MatcherBackend::DetGreedy),
        (
            "randomized Israeli-Itai",
            MatcherBackend::IsraeliItai { max_iterations: 64 },
        ),
    ] {
        let config = AsmConfig::new(0.5).with_seed(7).with_backend(backend);
        let fast = asm(&inst, &config)?;
        let congest = asm_congest(&inst, &config)?;

        println!();
        println!("backend: {name}");
        println!(
            "  fast engine    : |M| = {:>3}, {:>6} effective rounds",
            fast.matching.len(),
            fast.rounds
        );
        println!(
            "  CONGEST engine : |M| = {:>3}, {:>6} measured rounds, {} messages, {} bits",
            congest.matching.len(),
            congest.stats.rounds,
            congest.stats.messages,
            congest.stats.bits
        );
        println!(
            "  max message    : {} bits (CONGEST budget respected)",
            congest.stats.max_message_bits
        );
        assert_eq!(
            fast.matching, congest.matching,
            "the engines must agree pair-for-pair"
        );
        println!("  matchings identical: yes");
    }
    Ok(())
}
