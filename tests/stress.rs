//! Large-scale stress tests — `#[ignore]`d by default; run with
//! `cargo test --release --test stress -- --ignored`.

use almost_stable::{asm, distributed_gs, generators, AsmConfig, MatcherBackend};

#[test]
#[ignore = "large: ~seconds in release, minutes in debug"]
fn complete_two_thousand_players_meets_budget() {
    let inst = generators::complete(1000, 99);
    let eps = 0.5;
    let config = AsmConfig::new(eps).with_backend(MatcherBackend::DetGreedy);
    let report = asm(&inst, &config).unwrap();
    let st = report.stability(&inst);
    assert!(st.is_one_minus_eps_stable(eps));
    assert!(report.matching.len() >= 990);
}

#[test]
#[ignore = "large: chain at n = 8192"]
fn chain_saturation_extends_to_8k() {
    let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
    let r2048 = asm(&generators::adversarial_chain(2048), &config).unwrap();
    let r8192 = asm(&generators::adversarial_chain(8192), &config).unwrap();
    assert_eq!(
        r2048.rounds, r8192.rounds,
        "gate-induced saturation must persist at scale"
    );
    let gs = distributed_gs(&generators::adversarial_chain(8192));
    assert!(gs.rounds > 10 * r8192.rounds);
}

#[test]
#[ignore = "large: sparse 50k-player market"]
fn sparse_fifty_thousand_players() {
    let n = 25_000;
    let inst = generators::regular(n, 6, 7);
    let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
    let report = asm(&inst, &config).unwrap();
    let st = report.stability(&inst);
    assert!(st.is_one_minus_eps_stable(1.0));
    assert!(report.matching.len() * 10 >= n * 9);
}
