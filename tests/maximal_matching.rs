//! Cross-crate checks of the maximal-matching subroutines on the graphs
//! ASM actually feeds them: accepted-proposal subgraphs of real
//! instances, plus the Corollary 1/2 probability guarantees at scale.

use almost_stable::{generators, Matching, NodeId, SplitRng};
use asm_maximal::{
    amm, det_greedy, greedy_maximal, hkp_oracle, is_maximal_in, israeli_itai,
    iterations_for_maximal, maximality_violators, violator_fraction, MatcherBackend,
};

/// A plausible accepted-proposal graph: every man's first-quantile edges.
fn g0_of(inst: &almost_stable::Instance, quantile_frac: f64) -> Vec<(NodeId, NodeId)> {
    inst.ids()
        .men()
        .flat_map(|m| {
            let prefs = inst.prefs(m).ranked();
            let take = ((prefs.len() as f64 * quantile_frac).ceil() as usize).max(1);
            prefs
                .iter()
                .take(take.min(prefs.len()))
                .map(move |&w| (m, w))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn all_matchers_agree_on_maximality_over_g0_graphs() {
    for seed in 0..5 {
        let inst = generators::erdos_renyi(30, 30, 0.3, seed);
        let edges = g0_of(&inst, 0.25);
        if edges.is_empty() {
            continue;
        }
        let seq = greedy_maximal(&edges);
        let dist = det_greedy(&edges);
        let oracle = hkp_oracle(60, &edges);
        let ii = israeli_itai(&edges, 500, &SplitRng::new(seed), 0);
        for (name, pairs) in [
            ("sequential", &seq),
            ("det_greedy", &dist.pairs),
            ("hkp_oracle", &oracle.pairs),
            ("israeli_itai", &ii.outcome.pairs),
        ] {
            assert!(is_maximal_in(&edges, pairs), "{name} seed {seed}");
        }
    }
}

#[test]
fn corollary_1_iteration_budget_suffices_with_high_probability() {
    // With eta = 0.05 and the measured decay constant, at most ~2 of 40
    // runs should fail to be maximal.
    let mut failures = 0;
    let trials = 40;
    for seed in 0..trials {
        let inst = generators::zipf(40, 6, 1.0, seed);
        let edges = g0_of(&inst, 0.3);
        let budget = iterations_for_maximal(80, 0.05, 0.6);
        let run = israeli_itai(&edges, budget, &SplitRng::new(seed + 1000), 0);
        if !run.outcome.maximal {
            failures += 1;
        }
    }
    assert!(
        failures <= 6,
        "{failures}/{trials} truncated runs not maximal"
    );
}

#[test]
fn corollary_2_amm_violators_stay_below_eta() {
    let mut ok = 0;
    let trials = 25;
    let eta = 0.1;
    for seed in 0..trials {
        let inst = generators::regular(60, 5, seed);
        let edges = g0_of(&inst, 0.4);
        let run = amm(&edges, eta, 0.1, 0.6, &SplitRng::new(seed + 7), 0);
        if violator_fraction(&edges, &run.outcome.pairs) <= eta {
            ok += 1;
        }
    }
    assert!(
        ok >= trials * 4 / 5,
        "only {ok}/{trials} met the eta budget"
    );
}

#[test]
fn backend_outcomes_convert_to_matchings() {
    let inst = generators::complete(12, 3);
    let edges = g0_of(&inst, 0.2);
    for backend in [
        MatcherBackend::HkpOracle,
        MatcherBackend::DetGreedy,
        MatcherBackend::IsraeliItai { max_iterations: 60 },
    ] {
        let out = backend.run(24, &edges, &SplitRng::new(5), 0);
        let matching: Matching = out.pairs.iter().copied().collect();
        assert_eq!(matching.len(), out.pairs.len(), "{backend:?}");
    }
}

#[test]
fn violators_and_maximality_are_consistent() {
    let inst = generators::erdos_renyi(20, 20, 0.5, 4);
    let edges = g0_of(&inst, 0.5);
    let full = det_greedy(&edges);
    assert!(maximality_violators(&edges, &full.pairs).is_empty());
    let truncated = israeli_itai(&edges, 1, &SplitRng::new(2), 0);
    let violators = maximality_violators(&edges, &truncated.outcome.pairs);
    assert_eq!(
        violators.is_empty(),
        is_maximal_in(&edges, &truncated.outcome.pairs)
    );
}
