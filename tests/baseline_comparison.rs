//! Baselines behave as the literature says: distributed Gale–Shapley is
//! exact but can serialize; truncation (Floréen et al. [3]) trades rounds
//! for blocking pairs; ASM beats both on round scaling at bounded loss.

use almost_stable::{
    asm, count_blocking_pairs, distributed_gs, generators, man_optimal_stable, truncated_gs,
    AsmConfig, MatcherBackend, StabilityReport,
};

#[test]
fn distributed_gs_equals_centralized_gs() {
    for seed in 0..8 {
        let inst = generators::erdos_renyi(20, 20, 0.4, seed);
        assert_eq!(
            distributed_gs(&inst).matching,
            man_optimal_stable(&inst).matching,
            "seed {seed}"
        );
    }
}

#[test]
fn gs_cycles_grow_linearly_on_the_chain() {
    let c64 = distributed_gs(&generators::adversarial_chain(64)).cycles;
    let c256 = distributed_gs(&generators::adversarial_chain(256)).cycles;
    assert!(c64 >= 63);
    assert!(c256 >= 255);
    let ratio = c256 as f64 / c64 as f64;
    assert!(
        (3.0..6.0).contains(&ratio),
        "expected ~4x cycle growth for 4x n, got {ratio:.2}"
    );
}

#[test]
fn asm_rounds_saturate_on_the_chain_while_gs_grows_linearly() {
    // On the displacement chain GS serializes: Θ(n) rounds. ASM's outer
    // gate (|Q| >= 2^i) cuts the cascade off after the scheduled number
    // of QuantileMatch calls, leaving at most one bad man — so with the
    // real DetGreedy matcher its measured rounds SATURATE in n, at the
    // cost of ≤ 1 blocking pair (well within the ε|E| budget).
    let run = |n: usize| {
        let inst = generators::adversarial_chain(n);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let r = asm(&inst, &config).unwrap();
        let st = r.stability(&inst);
        assert!(st.is_one_minus_eps_stable(1.0), "n={n}");
        (r.rounds, distributed_gs(&inst).rounds)
    };
    let (a256, g256) = run(256);
    let (a1024, g1024) = run(1024);
    assert_eq!(a256, a1024, "ASM rounds saturate once the gate kicks in");
    assert!(g1024 >= 4 * g256 - 8, "GS stays linear: {g256} -> {g1024}");
    assert!(a1024 < g1024, "crossover: ASM beats GS at n = 1024");
}

#[test]
fn truncated_gs_blocking_decreases_with_budget() {
    let inst = generators::regular(64, 8, 5);
    let budgets = [1u64, 2, 4, 8, 16, 1024];
    let fractions: Vec<f64> = budgets
        .iter()
        .map(|&b| {
            let t = truncated_gs(&inst, b);
            StabilityReport::analyze(&inst, &t.matching).blocking_fraction()
        })
        .collect();
    assert!(
        fractions.last().unwrap() <= &1e-12,
        "full run must be stable"
    );
    // The trend is monotone-ish: the last is minimal, the first maximal.
    let first = fractions[0];
    for f in &fractions {
        assert!(*f <= first + 1e-12);
    }
}

#[test]
fn truncated_gs_on_bounded_lists_floreen_regime() {
    // Floréen et al.: on bounded lists, O(1) cycles already give an
    // almost stable matching. With d = 4 and 8 cycles the blocking
    // fraction should be tiny.
    let inst = generators::regular(128, 4, 8);
    let t = truncated_gs(&inst, 8);
    let st = StabilityReport::analyze(&inst, &t.matching);
    assert!(
        st.blocking_fraction() < 0.1,
        "blocking fraction {:.3} too high for bounded lists",
        st.blocking_fraction()
    );
}

#[test]
fn gs_is_stable_on_every_family() {
    let instances = vec![
        generators::complete(24, 2),
        generators::zipf(24, 6, 1.5, 2),
        generators::almost_regular(24, 3, 2.0, 2),
        generators::master_list(24, 2),
    ];
    for inst in instances {
        let gs = distributed_gs(&inst);
        assert!(gs.converged);
        assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
    }
}

#[test]
fn asm_matching_size_is_comparable_to_gs() {
    // ASM may leave a few bad men unmatched, but not wholesale.
    let inst = generators::complete(64, 15);
    let gs = distributed_gs(&inst).matching.len();
    let ours = asm(&inst, &AsmConfig::new(0.5)).unwrap().matching.len();
    assert!(
        ours * 10 >= gs * 9,
        "ASM matched {ours} vs GS {gs} — more than 10% short"
    );
}
