//! Property-based tests over randomly generated instances: core
//! invariants of the data structures and algorithms hold for *every*
//! input, not just the pinned seeds of the unit tests.

use almost_stable::core::congest::asm_congest;
use almost_stable::{
    asm, count_blocking_pairs, generators, man_optimal_stable, rand_asm, AsmConfig, Instance,
    MatcherBackend, RandAsmParams,
};
use asm_matching::{enumerate_stable_matchings, verify_matching};
use proptest::prelude::*;

/// Strategy: a random instance drawn from a random family.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (0u8..6, 2usize..24, any::<u64>()).prop_map(|(family, n, seed)| match family {
        0 => generators::complete(n, seed),
        1 => generators::erdos_renyi(n, n, 0.4, seed),
        2 => generators::regular(n, (n / 2).max(1), seed),
        3 => generators::zipf(n, (n / 3).max(1), 1.1, seed),
        4 => generators::adversarial_chain(n),
        _ => generators::master_list(n, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_instances_are_symmetric(inst in arb_instance()) {
        for (m, w) in inst.edges() {
            prop_assert!(inst.rank(m, w).is_some());
            prop_assert!(inst.rank(w, m).is_some());
        }
        // |E| is consistent from both sides.
        let from_women: usize = inst.ids().women().map(|w| inst.degree(w)).sum();
        prop_assert_eq!(from_women, inst.num_edges());
    }

    #[test]
    fn instance_serde_round_trips(inst in arb_instance()) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn gale_shapley_is_always_stable(inst in arb_instance()) {
        let gs = man_optimal_stable(&inst);
        verify_matching(&inst, &gs.matching).unwrap();
        prop_assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
    }

    #[test]
    fn asm_always_meets_its_epsilon_budget(
        inst in arb_instance(),
        eps_ix in 0usize..3,
        seed in any::<u64>(),
    ) {
        let eps = [2.0, 1.0, 0.5][eps_ix];
        let config = AsmConfig::new(eps).with_seed(seed);
        let report = asm(&inst, &config).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let st = report.stability(&inst);
        prop_assert!(
            st.is_one_minus_eps_stable(eps),
            "{} blocking of {} with eps {}", st.blocking_pairs, st.num_edges, eps
        );
    }

    #[test]
    fn asm_det_greedy_backend_always_meets_budget(inst in arb_instance()) {
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm(&inst, &config).unwrap();
        let st = report.stability(&inst);
        prop_assert!(st.is_one_minus_eps_stable(1.0));
    }

    #[test]
    fn good_bad_partition_is_total(inst in arb_instance()) {
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        prop_assert_eq!(
            report.good_men + report.bad_men.len(),
            inst.ids().num_men()
        );
        // Bad men are genuinely bad: unmatched with surviving options.
        for m in &report.bad_men {
            prop_assert!(report.matching.partner(*m).is_none());
        }
    }

    #[test]
    fn rand_asm_output_is_always_a_valid_matching(
        inst in arb_instance(),
        seed in any::<u64>(),
    ) {
        // Stability is probabilistic, but validity must be unconditional.
        let report = rand_asm(&inst, &RandAsmParams::new(1.0, 0.2).with_seed(seed)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
    }

    #[test]
    fn fine_quantiles_land_in_the_stable_lattice(n in 2usize..6, seed in any::<u64>()) {
        // With k >= deg, ProposalRound mimics Gale-Shapley (Section 3.2):
        // the output must be one of the instance's stable matchings.
        let inst = generators::complete(n, seed);
        let config = AsmConfig {
            quantiles: Some(64),
            ..AsmConfig::new(1.0)
        };
        let report = asm(&inst, &config).unwrap();
        let lattice = enumerate_stable_matchings(&inst, 50_000)
            .expect("small instance enumerates");
        prop_assert!(
            lattice.contains(&report.matching),
            "output is not a stable matching of the instance"
        );
    }

    #[test]
    fn engines_agree_for_every_instance_backend_and_seed(
        inst in arb_instance(),
        backend_ix in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Keep the CONGEST runs affordable: cap the instance size.
        prop_assume!(inst.ids().num_players() <= 24);
        let backend = [
            MatcherBackend::DetGreedy,
            MatcherBackend::BipartiteProposal,
            MatcherBackend::IsraeliItai { max_iterations: 32 },
        ][backend_ix];
        let config = AsmConfig::new(1.0).with_seed(seed).with_backend(backend);
        let fast = asm(&inst, &config).unwrap();
        let slow = asm_congest(&inst, &config).unwrap();
        prop_assert_eq!(fast.matching, slow.matching);
        prop_assert_eq!(fast.bad_men, slow.bad_men);
    }

    #[test]
    fn effective_rounds_never_exceed_nominal(
        inst in arb_instance(),
        seed in any::<u64>(),
    ) {
        let config = AsmConfig::new(1.0).with_seed(seed);
        let report = asm(&inst, &config).unwrap();
        prop_assert!(report.rounds <= report.nominal_rounds);
        prop_assert!(report.executed_proposal_rounds <= report.scheduled_proposal_rounds);
    }
}
