//! End-to-end tests of the `asm` CLI binary: generate → info → solve →
//! analyze pipelines over both the JSON and text formats.

use std::path::PathBuf;
use std::process::Command;

fn asm_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asm"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("asm-cli-test-{}-{name}", std::process::id()));
    dir
}

#[test]
fn generate_solve_analyze_json_pipeline() {
    let inst = tmp("market.json");
    let matching = tmp("matching.json");

    let out = asm_bin()
        .args(["generate", "--family", "regular", "--n", "24", "--d", "4"])
        .args(["--seed", "7", "--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = asm_bin()
        .args(["solve", "--input", inst.to_str().unwrap()])
        .args(["--eps", "0.5", "--backend", "greedy"])
        .args(["--out", matching.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("stability:"), "solve must print a report: {log}");

    let out = asm_bin()
        .args(["analyze", "--input", inst.to_str().unwrap()])
        .args(["--matching", matching.to_str().unwrap(), "--eps", "0.5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stability"), "{text}");
    assert!(text.contains("welfare"), "{text}");
    assert!(text.contains("(1-0.5)-stable : true"), "{text}");

    std::fs::remove_file(&inst).ok();
    std::fs::remove_file(&matching).ok();
}

#[test]
fn text_format_round_trip_through_cli() {
    let inst = tmp("chain.txt");
    let out = asm_bin()
        .args(["generate", "--family", "chain", "--n", "8"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let contents = std::fs::read_to_string(&inst).unwrap();
    assert!(contents.starts_with("asm-instance v1"));

    let out = asm_bin()
        .args(["info", "--input", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("complete    : false"));
    std::fs::remove_file(&inst).ok();
}

#[test]
fn solve_supports_every_algorithm() {
    let inst = tmp("algos.json");
    asm_bin()
        .args(["generate", "--family", "complete", "--n", "12"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    for algo in ["asm", "rand-asm", "almost-regular", "gs"] {
        let out = asm_bin()
            .args(["solve", "--input", inst.to_str().unwrap()])
            .args(["--algorithm", algo, "--eps", "1.0"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&inst).ok();
}

#[test]
fn help_prints_usage_successfully() {
    for flag in ["help", "--help", "-h"] {
        let out = asm_bin().arg(flag).output().expect("binary runs");
        assert!(out.status.success(), "{flag}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
    }
}

#[test]
fn bad_invocations_fail_with_usage() {
    let out = asm_bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = asm_bin()
        .args(["generate", "--family", "nonsense", "--n", "4"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = asm_bin()
        .args(["solve", "--input", "/nonexistent/file.json"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
