//! End-to-end tests of the `asm` CLI binary: generate → info → solve →
//! analyze pipelines over both the JSON and text formats, the exit-code
//! contract (0 success / 2 usage / 3 input / 4 solve), and the `serve`
//! subcommand's wire round trip.

use std::path::PathBuf;
use std::process::Command;

/// Exit code for usage errors (unknown subcommand/flag, bad flag value).
const EXIT_USAGE: i32 = 2;
/// Exit code for input/I-O errors (unreadable or malformed files).
const EXIT_INPUT: i32 = 3;
/// Exit code for solve errors (engine failures, unverifiable matchings).
const EXIT_SOLVE: i32 = 4;

fn asm_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asm"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("asm-cli-test-{}-{name}", std::process::id()));
    dir
}

#[test]
fn generate_solve_analyze_json_pipeline() {
    let inst = tmp("market.json");
    let matching = tmp("matching.json");

    let out = asm_bin()
        .args(["generate", "--family", "regular", "--n", "24", "--d", "4"])
        .args(["--seed", "7", "--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = asm_bin()
        .args(["solve", "--input", inst.to_str().unwrap()])
        .args(["--eps", "0.5", "--backend", "greedy"])
        .args(["--out", matching.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(
        log.contains("stability:"),
        "solve must print a report: {log}"
    );

    let out = asm_bin()
        .args(["analyze", "--input", inst.to_str().unwrap()])
        .args(["--matching", matching.to_str().unwrap(), "--eps", "0.5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stability"), "{text}");
    assert!(text.contains("welfare"), "{text}");
    assert!(text.contains("(1-0.5)-stable : true"), "{text}");

    std::fs::remove_file(&inst).ok();
    std::fs::remove_file(&matching).ok();
}

#[test]
fn text_format_round_trip_through_cli() {
    let inst = tmp("chain.txt");
    let out = asm_bin()
        .args(["generate", "--family", "chain", "--n", "8"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let contents = std::fs::read_to_string(&inst).unwrap();
    assert!(contents.starts_with("asm-instance v1"));

    let out = asm_bin()
        .args(["info", "--input", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("complete    : false"));
    std::fs::remove_file(&inst).ok();
}

#[test]
fn solve_supports_every_algorithm() {
    let inst = tmp("algos.json");
    asm_bin()
        .args(["generate", "--family", "complete", "--n", "12"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    for algo in ["asm", "rand-asm", "almost-regular", "gs"] {
        let out = asm_bin()
            .args(["solve", "--input", inst.to_str().unwrap()])
            .args(["--algorithm", algo, "--eps", "1.0"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&inst).ok();
}

#[test]
fn help_prints_usage_successfully() {
    for flag in ["help", "--help", "-h"] {
        let out = asm_bin().arg(flag).output().expect("binary runs");
        assert!(out.status.success(), "{flag}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
    }
}

#[test]
fn text_format_full_pipeline_matches_json_pipeline() {
    // The same instance generated in both formats must drive solve +
    // analyze to identical results: the matchings (deterministic seed,
    // deterministic backend) must be byte-identical JSON.
    let inst_json = tmp("roundtrip.json");
    let inst_txt = tmp("roundtrip.txt");
    for path in [&inst_json, &inst_txt] {
        let out = asm_bin()
            .args(["generate", "--family", "regular", "--n", "16", "--d", "4"])
            .args(["--seed", "11", "--out", path.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let mut matchings = Vec::new();
    for (inst, name) in [(&inst_json, "m-json.json"), (&inst_txt, "m-txt.json")] {
        let matching = tmp(name);
        let out = asm_bin()
            .args(["solve", "--input", inst.to_str().unwrap()])
            .args(["--eps", "1.0", "--backend", "greedy", "--seed", "5"])
            .args(["--out", matching.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = asm_bin()
            .args(["analyze", "--input", inst.to_str().unwrap()])
            .args(["--matching", matching.to_str().unwrap(), "--eps", "1.0"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // f64 Display renders eps 1.0 as "1".
        assert!(String::from_utf8_lossy(&out.stdout).contains("(1-1)-stable : true"));

        matchings.push(std::fs::read_to_string(&matching).unwrap());
        std::fs::remove_file(&matching).ok();
    }
    assert_eq!(
        matchings[0], matchings[1],
        "text and JSON instance formats must solve identically"
    );
    std::fs::remove_file(&inst_json).ok();
    std::fs::remove_file(&inst_txt).ok();
}

#[test]
fn malformed_inputs_fail_cleanly() {
    // Every malformed input must produce a nonzero exit and an "error:"
    // diagnostic — never a panic (which would print "panicked at").
    let cases: [(&str, &str); 3] = [
        ("bad.json", "{ this is not json"),
        ("bad.txt", "not an asm-instance header\n1 2 3"),
        ("trunc.json", "{\"num_women\": 4"),
    ];
    for (name, contents) in cases {
        let path = tmp(name);
        std::fs::write(&path, contents).unwrap();
        for cmd in ["solve", "info"] {
            let out = asm_bin()
                .args([cmd, "--input", path.to_str().unwrap()])
                .output()
                .expect("binary runs");
            assert!(!out.status.success(), "{cmd} accepted {name}");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(err.contains("error:"), "{cmd} on {name}: {err}");
            assert!(!err.contains("panicked"), "{cmd} on {name}: {err}");
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn analyze_rejects_malformed_and_invalid_matchings() {
    let inst = tmp("analyze-inst.json");
    let out = asm_bin()
        .args(["generate", "--family", "complete", "--n", "6"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Malformed matching JSON.
    let garbled = tmp("garbled-matching.json");
    std::fs::write(&garbled, "[[0, 1], [").unwrap();
    let out = asm_bin()
        .args(["analyze", "--input", inst.to_str().unwrap()])
        .args(["--matching", garbled.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // Well-formed JSON that is not a valid matching for the instance:
    // player 0 partnered with itself (verify_matching must reject it,
    // not the parser).
    let wrong = tmp("wrong-matching.json");
    std::fs::write(
        &wrong,
        "{\"partner\":[0,null,null,null,null,null,null,null,null,null,null,null]}",
    )
    .unwrap();
    let out = asm_bin()
        .args(["analyze", "--input", inst.to_str().unwrap()])
        .args(["--matching", wrong.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "self-pairing must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    for p in [&inst, &garbled, &wrong] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn bad_invocations_fail_with_usage() {
    let out = asm_bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = asm_bin()
        .args(["generate", "--family", "nonsense", "--n", "4"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = asm_bin()
        .args(["solve", "--input", "/nonexistent/file.json"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn exit_codes_distinguish_usage_from_input_from_solve() {
    // Usage errors: exit 2.
    for args in [
        vec![],
        vec!["dance"],
        vec!["solve"], // --input missing
        vec!["generate", "--family", "nonsense", "--n", "4"],
        vec!["generate", "--family", "complete", "--n", "nope"],
        vec!["generate", "--family"], // flag without value
        vec!["generate", "nodashes"],
    ] {
        let out = asm_bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(EXIT_USAGE), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "{args:?} must print usage"
        );
    }

    // Input errors: exit 3.
    let garbled = tmp("exit-code-garbled.json");
    std::fs::write(&garbled, "{ not json").unwrap();
    for args in [
        vec!["solve", "--input", "/nonexistent/file.json"],
        vec!["info", "--input", garbled.to_str().unwrap()],
        vec!["solve", "--input", garbled.to_str().unwrap()],
    ] {
        let out = asm_bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(EXIT_INPUT), "{args:?}");
        assert!(
            !String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "{args:?}: input errors must not dump usage"
        );
    }
    std::fs::remove_file(&garbled).ok();

    // Solve errors: exit 4 (a well-formed matching the verifier rejects).
    let inst = tmp("exit-code-inst.json");
    let out = asm_bin()
        .args(["generate", "--family", "complete", "--n", "6"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let wrong = tmp("exit-code-wrong-matching.json");
    std::fs::write(
        &wrong,
        "{\"partner\":[0,null,null,null,null,null,null,null,null,null,null,null]}",
    )
    .unwrap();
    let out = asm_bin()
        .args(["analyze", "--input", inst.to_str().unwrap()])
        .args(["--matching", wrong.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(EXIT_SOLVE));
    std::fs::remove_file(&inst).ok();
    std::fs::remove_file(&wrong).ok();
}

#[test]
fn eps_flag_errors_are_usage_errors() {
    let inst = tmp("eps-exit-code.json");
    let out = asm_bin()
        .args(["generate", "--family", "complete", "--n", "6"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = asm_bin()
        .args(["solve", "--input", inst.to_str().unwrap(), "--eps", "-1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
    std::fs::remove_file(&inst).ok();
}

#[test]
fn serve_round_trips_health_solve_and_shutdown() {
    use std::io::{BufRead, BufReader, Write};

    let mut child = asm_bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("asm-service listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut exchange = |line: &str| {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply
    };

    let health = exchange("{\"id\":1,\"op\":\"health\"}");
    assert!(health.contains("\"reply\":\"health\""), "{health}");
    let solve = exchange(
        "{\"id\":2,\"op\":\"solve\",\"body\":{\"instance\":{\"Generator\":{\"Complete\":{\"n\":8,\"seed\":3}}},\"algorithm\":\"asm\",\"eps\":0.5,\"delta\":0.1,\"seed\":1,\"backend\":\"greedy\",\"deadline_ms\":0,\"cycles\":0}}",
    );
    assert!(solve.contains("\"reply\":\"solved\""), "{solve}");
    let bye = exchange("{\"id\":3,\"op\":\"shutdown\"}");
    assert!(bye.contains("\"reply\":\"shutting_down\""), "{bye}");

    let status = child.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown must exit 0: {status}");
    let drained = lines.next().unwrap().unwrap();
    assert!(drained.contains("drained"), "{drained}");
}

#[test]
fn out_of_range_eps_fails_cleanly() {
    let inst = tmp("eps-range.json");
    let out = asm_bin()
        .args(["generate", "--family", "complete", "--n", "6"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    for eps in ["0", "-1", "nan", "inf"] {
        let out = asm_bin()
            .args(["solve", "--input", inst.to_str().unwrap(), "--eps", eps])
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "--eps {eps} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "--eps {eps}: {err}");
        assert!(!err.contains("panicked"), "--eps {eps}: {err}");
    }
    std::fs::remove_file(&inst).ok();
}
