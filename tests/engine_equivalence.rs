//! Cross-validation of the two execution engines, built on the
//! `asm-conformance` differential runner: [`assert_conforms`] executes a
//! pinned case on the fast vector engine and the message-passing CONGEST
//! engine, diffs the full run summaries (matching, scheduled and executed
//! round counts, good/bad/removed accounting), applies the paper-invariant
//! oracles, and writes a JSON replay file on any divergence.
//!
//! The round-bracketing and payload-size checks at the bottom stay
//! hand-rolled: they compare engine-specific cost models the shared
//! summary deliberately does not include.

use almost_stable::core::congest::asm_congest;
use almost_stable::{asm, generators, AsmConfig, MatcherBackend};
use asm_conformance::differential::Algorithm;
use asm_conformance::{assert_conforms, DiffCase};
use asm_instance::generators::GeneratorConfig;

#[test]
fn det_greedy_identical_matchings_across_families() {
    let families = [
        GeneratorConfig::Complete { n: 12, seed: 1 },
        GeneratorConfig::ErdosRenyi {
            num_women: 14,
            num_men: 14,
            p: 0.4,
            seed: 2,
        },
        GeneratorConfig::Regular {
            n: 12,
            d: 4,
            seed: 3,
        },
        GeneratorConfig::Zipf {
            n: 12,
            d: 4,
            s: 1.2,
            seed: 4,
        },
        GeneratorConfig::Chain { n: 12 },
        GeneratorConfig::MasterList { n: 10, seed: 5 },
    ];
    for generator in families {
        assert_conforms(DiffCase::asm(generator, MatcherBackend::DetGreedy, 1.0));
    }
}

#[test]
fn all_protocol_backends_agree_with_fast_engine() {
    let generator = GeneratorConfig::Zipf {
        n: 14,
        d: 5,
        s: 1.1,
        seed: 21,
    };
    for backend in [
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
        MatcherBackend::PanconesiRizzi,
        MatcherBackend::IsraeliItai { max_iterations: 48 },
    ] {
        assert_conforms(DiffCase::asm(generator.clone(), backend, 0.5).with_seed(3));
    }
}

#[test]
fn israeli_itai_identical_matchings_across_seeds() {
    let generator = GeneratorConfig::ErdosRenyi {
        num_women: 12,
        num_men: 12,
        p: 0.5,
        seed: 9,
    };
    for seed in 0..6 {
        let backend = MatcherBackend::IsraeliItai { max_iterations: 48 };
        assert_conforms(DiffCase::asm(generator.clone(), backend, 1.0).with_seed(seed));
    }
}

#[test]
fn rand_asm_engines_agree() {
    for seed in [0, 7, 19] {
        assert_conforms(DiffCase {
            generator: GeneratorConfig::Complete { n: 10, seed: 4 },
            algorithm: Algorithm::RandAsm,
            backend: MatcherBackend::DetGreedy, // ignored by RandASM
            epsilon: 1.0,
            delta: 0.1,
            seed,
        });
    }
}

#[test]
fn congest_rounds_close_to_fast_accounting() {
    // The CONGEST engine pays 2 extra pipeline rounds per ProposalRound
    // (message delivery latency) plus the matcher's trailing delivery
    // round. Its measured rounds must bracket the fast engine's.
    let inst = generators::erdos_renyi(16, 16, 0.4, 11);
    let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
    let fast = asm(&inst, &config).unwrap();
    let slow = asm_congest(&inst, &config).unwrap();
    let per_pr_overhead = 4;
    assert!(slow.stats.rounds >= fast.rounds);
    assert!(
        slow.stats.rounds <= fast.rounds + per_pr_overhead * fast.executed_proposal_rounds,
        "congest rounds {} vs fast {} over {} PRs",
        slow.stats.rounds,
        fast.rounds,
        fast.executed_proposal_rounds
    );
}

#[test]
fn congest_engine_respects_message_budget() {
    // 5-bit payloads regardless of n: well under the O(log n) allowance
    // the conformance payload oracle enforces.
    for n in [8usize, 32] {
        let inst = generators::complete(n, 2);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.stats.max_message_bits <= 8, "n={n}");
        assert!(report.stats.messages > 0);
    }
}

#[test]
fn seeded_runs_are_reproducible_end_to_end() {
    let inst = generators::zipf(14, 5, 1.0, 6);
    let config = AsmConfig::new(0.5)
        .with_seed(33)
        .with_backend(MatcherBackend::IsraeliItai { max_iterations: 32 });
    let a = asm_congest(&inst, &config).unwrap();
    let b = asm_congest(&inst, &config).unwrap();
    assert_eq!(a, b);
}
