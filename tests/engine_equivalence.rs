//! Cross-validation of the two execution engines: the fast vector engine
//! and the message-passing CONGEST engine must produce identical
//! matchings from identical seeds, and their round counts must agree up
//! to the CONGEST engine's per-phase pipeline overhead.

use almost_stable::core::congest::{asm_congest, rand_asm_congest};
use almost_stable::{asm, generators, rand_asm, AsmConfig, MatcherBackend, RandAsmParams};

#[test]
fn det_greedy_identical_matchings_across_families() {
    let instances = vec![
        generators::complete(12, 1),
        generators::erdos_renyi(14, 14, 0.4, 2),
        generators::regular(12, 4, 3),
        generators::zipf(12, 4, 1.2, 4),
        generators::adversarial_chain(12),
        generators::master_list(10, 5),
    ];
    for (i, inst) in instances.into_iter().enumerate() {
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let fast = asm(&inst, &config).unwrap();
        let slow = asm_congest(&inst, &config).unwrap();
        assert_eq!(fast.matching, slow.matching, "family #{i}");
        assert_eq!(
            fast.executed_proposal_rounds, slow.executed_proposal_rounds,
            "family #{i}"
        );
        assert_eq!(fast.good_men, slow.good_men, "family #{i}");
        assert_eq!(fast.bad_men, slow.bad_men, "family #{i}");
    }
}

#[test]
fn all_protocol_backends_agree_with_fast_engine() {
    let inst = generators::zipf(14, 5, 1.1, 21);
    for backend in [
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
        MatcherBackend::PanconesiRizzi,
        MatcherBackend::IsraeliItai { max_iterations: 48 },
    ] {
        let config = AsmConfig::new(0.5).with_seed(3).with_backend(backend);
        let fast = asm(&inst, &config).unwrap();
        let slow = asm_congest(&inst, &config).unwrap();
        assert_eq!(fast.matching, slow.matching, "{backend:?}");
    }
}

#[test]
fn israeli_itai_identical_matchings_across_seeds() {
    let inst = generators::erdos_renyi(12, 12, 0.5, 9);
    for seed in 0..6 {
        let config = AsmConfig::new(1.0)
            .with_seed(seed)
            .with_backend(MatcherBackend::IsraeliItai { max_iterations: 48 });
        let fast = asm(&inst, &config).unwrap();
        let slow = asm_congest(&inst, &config).unwrap();
        assert_eq!(fast.matching, slow.matching, "seed {seed}");
    }
}

#[test]
fn rand_asm_engines_agree() {
    let inst = generators::complete(10, 4);
    for seed in [0, 7, 19] {
        let params = RandAsmParams::new(1.0, 0.1).with_seed(seed);
        let fast = rand_asm(&inst, &params).unwrap();
        let slow = rand_asm_congest(&inst, &params).unwrap();
        assert_eq!(fast.matching, slow.matching, "seed {seed}");
    }
}

#[test]
fn congest_rounds_close_to_fast_accounting() {
    // The CONGEST engine pays 2 extra pipeline rounds per ProposalRound
    // (message delivery latency) plus the matcher's trailing delivery
    // round. Its measured rounds must bracket the fast engine's.
    let inst = generators::erdos_renyi(16, 16, 0.4, 11);
    let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
    let fast = asm(&inst, &config).unwrap();
    let slow = asm_congest(&inst, &config).unwrap();
    let per_pr_overhead = 4;
    assert!(slow.stats.rounds >= fast.rounds);
    assert!(
        slow.stats.rounds <= fast.rounds + per_pr_overhead * fast.executed_proposal_rounds,
        "congest rounds {} vs fast {} over {} PRs",
        slow.stats.rounds,
        fast.rounds,
        fast.executed_proposal_rounds
    );
}

#[test]
fn congest_engine_respects_message_budget() {
    // 5-bit payloads regardless of n: well under O(log n).
    for n in [8usize, 32] {
        let inst = generators::complete(n, 2);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.stats.max_message_bits <= 8, "n={n}");
        assert!(report.stats.messages > 0);
    }
}

#[test]
fn seeded_runs_are_reproducible_end_to_end() {
    let inst = generators::zipf(14, 5, 1.0, 6);
    let config = AsmConfig::new(0.5)
        .with_seed(33)
        .with_backend(MatcherBackend::IsraeliItai { max_iterations: 32 });
    let a = asm_congest(&inst, &config).unwrap();
    let b = asm_congest(&inst, &config).unwrap();
    assert_eq!(a, b);
}
