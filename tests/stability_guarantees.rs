//! End-to-end checks of the paper's approximation guarantees (Theorems 3,
//! 5, 6) across instance families, epsilons, and algorithm variants.

use almost_stable::{
    almost_regular_asm, asm, generators, rand_asm, AlmostRegularParams, AsmConfig, Instance,
    MatcherBackend, RandAsmParams, StabilityReport,
};
use asm_matching::verify_matching;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("complete", generators::complete(n, seed)),
        ("erdos_renyi", generators::erdos_renyi(n, n, 0.3, seed)),
        ("regular", generators::regular(n, 6.min(n), seed)),
        ("zipf", generators::zipf(n, 6.min(n), 1.3, seed)),
        ("almost_regular", generators::almost_regular(n, 3, 2.5, seed)),
        ("chain", generators::adversarial_chain(n)),
        ("master_list", generators::master_list(n, seed)),
    ]
}

#[test]
fn theorem_3_asm_meets_epsilon_budget_everywhere() {
    for (name, inst) in families(32, 1) {
        for eps in [2.0, 1.0, 0.5] {
            let report = asm(&inst, &AsmConfig::new(eps)).unwrap();
            verify_matching(&inst, &report.matching).unwrap();
            let st = report.stability(&inst);
            assert!(
                st.is_one_minus_eps_stable(eps),
                "{name} eps={eps}: {} blocking of {}",
                st.blocking_pairs,
                st.num_edges
            );
        }
    }
}

#[test]
fn theorem_3_with_real_distributed_matcher() {
    for (name, inst) in families(24, 3) {
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm(&inst, &config).unwrap();
        let st = report.stability(&inst);
        assert!(st.is_one_minus_eps_stable(1.0), "{name}");
    }
}

#[test]
fn theorem_5_rand_asm_meets_budget_across_seeds() {
    let mut failures = 0;
    let trials = 30;
    for seed in 0..trials {
        let inst = generators::erdos_renyi(24, 24, 0.4, 77);
        let report = rand_asm(&inst, &RandAsmParams::new(1.0, 0.1).with_seed(seed)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        if !report.stability(&inst).is_one_minus_eps_stable(1.0) {
            failures += 1;
        }
    }
    // delta = 0.1: expect ~3 failures in 30; even 9 would be a 3x excess.
    assert!(failures <= trials / 3, "{failures}/{trials} seeds failed");
}

#[test]
fn theorem_6_almost_regular_families() {
    for (name, inst) in [
        ("complete", generators::complete(32, 5)),
        ("regular", generators::regular(32, 5, 5)),
        ("almost_regular", generators::almost_regular(32, 4, 2.0, 5)),
    ] {
        let report =
            almost_regular_asm(&inst, &AlmostRegularParams::new(1.0, 0.1).with_seed(9)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let st = report.stability(&inst);
        assert!(st.is_one_minus_eps_stable(1.0), "{name}");
    }
}

#[test]
fn larger_instance_tight_epsilon() {
    let inst = generators::complete(128, 13);
    let eps = 0.25;
    let report = asm(&inst, &AsmConfig::new(eps)).unwrap();
    let st = report.stability(&inst);
    assert!(st.is_one_minus_eps_stable(eps));
    // Complete instances always admit a perfect matching, and ASM should
    // find a near-perfect one (unmatched players cause blocking pairs).
    assert!(
        report.matching.len() >= 120,
        "only matched {}",
        report.matching.len()
    );
}

#[test]
fn empty_and_tiny_instances_are_handled() {
    for inst in [
        generators::complete(0, 1),
        generators::complete(1, 1),
        generators::erdos_renyi(3, 3, 0.0, 1),
    ] {
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        let st = report.stability(&inst);
        assert!(st.is_one_minus_eps_stable(1.0));
    }
}

#[test]
fn lemma_3_good_men_have_no_2_over_k_blocking_pairs() {
    // Lemma 3: no good man is incident with any (2/k)-blocking pair.
    let inst = generators::complete(48, 21);
    let config = AsmConfig::new(1.0); // k = 8
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let eps_bp = almost_stable::eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
    for (m, w) in &eps_bp {
        assert!(
            report.bad_men.contains(m),
            "(2/k)-blocking pair ({m}, {w}) touches a good man"
        );
    }
}

#[test]
fn lemma_4_few_non_2k_blocking_pairs() {
    // Lemma 4: at most 4|E|/k blocking pairs are not (2/k)-blocking.
    let inst = generators::erdos_renyi(40, 40, 0.5, 31);
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let blocking = almost_stable::blocking_pairs(&inst, &report.matching);
    let eps_blocking = almost_stable::eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
    let not_2k = blocking.iter().filter(|p| !eps_blocking.contains(p)).count();
    assert!(
        (not_2k as f64) <= 4.0 * inst.num_edges() as f64 / k,
        "{not_2k} non-(2/k)-blocking pairs exceeds 4|E|/k"
    );
}

#[test]
fn remark_2_removing_bad_men_gives_eps_blocking_stability() {
    // After removing the bad men, the matching is (2/k)-blocking-stable
    // with respect to the remaining players.
    let inst = generators::zipf(40, 8, 1.0, 3);
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let residual = asm_matching::eps_blocking_pairs_excluding(
        &inst,
        &report.matching,
        2.0 / k,
        &report.bad_men,
    );
    assert!(
        residual.is_empty(),
        "{} eps-blocking pairs survive bad-man removal",
        residual.len()
    );
}

#[test]
fn stability_report_consistency() {
    let inst = generators::regular(20, 4, 9);
    let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
    let st = report.stability(&inst);
    let direct = StabilityReport::analyze(&inst, &report.matching);
    assert_eq!(st, direct);
}
