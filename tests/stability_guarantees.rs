//! End-to-end checks of the paper's approximation guarantees (Theorems 3,
//! 5, 6) across instance families, epsilons, and algorithm variants,
//! asserted through the `asm-conformance` oracle layer: every run is
//! checked for matching validity, the `ε·|E|` blocking budget, the `δ`
//! bad-men budget, and good/bad/removed accounting in one call.
//!
//! The lemma-level tests at the bottom stay hand-rolled — they reason
//! about `(2/k)`-blocking structure the summary-level oracles do not
//! model.

use almost_stable::{asm, generators, AsmConfig, Instance, MatcherBackend, StabilityReport};
use asm_conformance::differential::Algorithm;
use asm_conformance::{check_summary, run_case, DiffCase};
use asm_core::RunSummary;
use asm_instance::generators::GeneratorConfig;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("complete", generators::complete(n, seed)),
        ("erdos_renyi", generators::erdos_renyi(n, n, 0.3, seed)),
        ("regular", generators::regular(n, 6.min(n), seed)),
        ("zipf", generators::zipf(n, 6.min(n), 1.3, seed)),
        (
            "almost_regular",
            generators::almost_regular(n, 3, 2.5, seed),
        ),
        ("chain", generators::adversarial_chain(n)),
        ("master_list", generators::master_list(n, seed)),
    ]
}

#[test]
fn theorem_3_asm_meets_epsilon_budget_everywhere() {
    for (name, inst) in families(32, 1) {
        for eps in [2.0, 1.0, 0.5] {
            let config = AsmConfig::new(eps);
            let summary = RunSummary::from(&asm(&inst, &config).unwrap());
            let violations = check_summary(&inst, &summary, Some(eps), Some(config.delta()));
            assert_eq!(violations, [], "{name} eps={eps}");
        }
    }
}

#[test]
fn theorem_3_with_real_distributed_matcher() {
    // The distributed-matcher variant goes through the full differential
    // runner: fast vs CONGEST agreement plus every oracle.
    let families = [
        GeneratorConfig::Complete { n: 24, seed: 3 },
        GeneratorConfig::ErdosRenyi {
            num_women: 24,
            num_men: 24,
            p: 0.3,
            seed: 3,
        },
        GeneratorConfig::Regular {
            n: 24,
            d: 6,
            seed: 3,
        },
        GeneratorConfig::Zipf {
            n: 24,
            d: 6,
            s: 1.3,
            seed: 3,
        },
        GeneratorConfig::AlmostRegular {
            n: 24,
            d_min: 3,
            alpha: 2.5,
            seed: 3,
        },
        GeneratorConfig::Chain { n: 24 },
        GeneratorConfig::MasterList { n: 24, seed: 3 },
    ];
    for generator in families {
        let case = DiffCase::asm(generator.clone(), MatcherBackend::DetGreedy, 1.0);
        let report = asm_conformance::assert_conforms(case);
        assert!(report.budgets_met, "{generator}");
    }
}

#[test]
fn theorem_5_rand_asm_meets_budget_across_seeds() {
    let mut failures = 0;
    let trials = 30;
    for seed in 0..trials {
        let case = DiffCase {
            generator: GeneratorConfig::ErdosRenyi {
                num_women: 24,
                num_men: 24,
                p: 0.4,
                seed: 77,
            },
            algorithm: Algorithm::RandAsm,
            backend: MatcherBackend::DetGreedy, // ignored by RandASM
            epsilon: 1.0,
            delta: 0.1,
            seed,
        };
        // Engines must agree and hard invariants must hold on every seed;
        // the probabilistic eps-budget is aggregated below.
        let report = run_case(&case).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        if !report.budgets_met {
            failures += 1;
        }
    }
    // delta = 0.1: expect ~3 failures in 30; even 9 would be a 3x excess.
    assert!(failures <= trials / 3, "{failures}/{trials} seeds failed");
}

#[test]
fn theorem_6_almost_regular_families() {
    for generator in [
        GeneratorConfig::Complete { n: 32, seed: 5 },
        GeneratorConfig::Regular {
            n: 32,
            d: 5,
            seed: 5,
        },
        GeneratorConfig::AlmostRegular {
            n: 32,
            d_min: 4,
            alpha: 2.0,
            seed: 5,
        },
    ] {
        let case = DiffCase {
            generator: generator.clone(),
            algorithm: Algorithm::AlmostRegular,
            backend: MatcherBackend::DetGreedy, // ignored
            epsilon: 1.0,
            delta: 0.1,
            seed: 9,
        };
        let report = asm_conformance::assert_conforms(case);
        assert!(
            report.budgets_met,
            "{generator} missed the budget at seed 9"
        );
    }
}

#[test]
fn larger_instance_tight_epsilon() {
    let inst = generators::complete(128, 13);
    let eps = 0.25;
    let config = AsmConfig::new(eps);
    let summary = RunSummary::from(&asm(&inst, &config).unwrap());
    assert_eq!(
        check_summary(&inst, &summary, Some(eps), Some(config.delta())),
        []
    );
    // Complete instances always admit a perfect matching, and ASM should
    // find a near-perfect one (unmatched players cause blocking pairs).
    assert!(
        summary.matching.len() >= 120,
        "only matched {}",
        summary.matching.len()
    );
}

#[test]
fn empty_and_tiny_instances_are_handled() {
    for inst in [
        generators::complete(0, 1),
        generators::complete(1, 1),
        generators::erdos_renyi(3, 3, 0.0, 1),
    ] {
        let summary = RunSummary::from(&asm(&inst, &AsmConfig::new(1.0)).unwrap());
        assert_eq!(check_summary(&inst, &summary, Some(1.0), None), []);
    }
}

#[test]
fn lemma_3_good_men_have_no_2_over_k_blocking_pairs() {
    // Lemma 3: no good man is incident with any (2/k)-blocking pair.
    let inst = generators::complete(48, 21);
    let config = AsmConfig::new(1.0); // k = 8
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let eps_bp = almost_stable::eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
    for (m, w) in &eps_bp {
        assert!(
            report.bad_men.contains(m),
            "(2/k)-blocking pair ({m}, {w}) touches a good man"
        );
    }
}

#[test]
fn lemma_4_few_non_2k_blocking_pairs() {
    // Lemma 4: at most 4|E|/k blocking pairs are not (2/k)-blocking.
    let inst = generators::erdos_renyi(40, 40, 0.5, 31);
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let blocking = almost_stable::blocking_pairs(&inst, &report.matching);
    let eps_blocking = almost_stable::eps_blocking_pairs(&inst, &report.matching, 2.0 / k);
    let not_2k = blocking
        .iter()
        .filter(|p| !eps_blocking.contains(p))
        .count();
    assert!(
        (not_2k as f64) <= 4.0 * inst.num_edges() as f64 / k,
        "{not_2k} non-(2/k)-blocking pairs exceeds 4|E|/k"
    );
}

#[test]
fn remark_2_removing_bad_men_gives_eps_blocking_stability() {
    // After removing the bad men, the matching is (2/k)-blocking-stable
    // with respect to the remaining players.
    let inst = generators::zipf(40, 8, 1.0, 3);
    let config = AsmConfig::new(1.0);
    let k = config.quantile_count() as f64;
    let report = asm(&inst, &config).unwrap();
    let residual = asm_matching::eps_blocking_pairs_excluding(
        &inst,
        &report.matching,
        2.0 / k,
        &report.bad_men,
    );
    assert!(
        residual.is_empty(),
        "{} eps-blocking pairs survive bad-man removal",
        residual.len()
    );
}

#[test]
fn stability_report_consistency() {
    let inst = generators::regular(20, 4, 9);
    let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
    let st = report.stability(&inst);
    let direct = StabilityReport::analyze(&inst, &report.matching);
    assert_eq!(st, direct);
}

#[test]
fn theorem_6_engines_agree_at_the_almost_regular_sweet_spot() {
    // AlmostRegularASM at its native family across a few seeds, through
    // the full differential runner.
    for seed in 0..4 {
        run_case(&DiffCase {
            generator: GeneratorConfig::AlmostRegular {
                n: 24,
                d_min: 4,
                alpha: 2.0,
                seed: 11,
            },
            algorithm: Algorithm::AlmostRegular,
            backend: MatcherBackend::DetGreedy, // ignored
            epsilon: 1.0,
            delta: 0.1,
            seed,
        })
        .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
    }
}
