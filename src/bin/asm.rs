//! `asm` — command-line interface to the almost-stable matching library.
//!
//! ```text
//! asm generate --family <name> --n <N> [options] --out inst.json
//! asm solve    --input inst.json [--algorithm asm|rand-asm|almost-regular|gs]
//!              [--eps E] [--delta D] [--seed S] [--backend hkp|greedy|ii]
//!              [--out matching.json]
//! asm analyze  --input inst.json --matching matching.json [--eps E]
//! asm info     --input inst.json
//! asm serve    [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!              [--cache-capacity N] [--worker-delay-ms MS] [--shards N]
//! asm route    --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!              [--forwarders N] [--queue-capacity N]
//!              [--probe-interval-ms MS] [--probe-timeout-ms MS]
//!              [--down-after K] [--connect-timeout-ms MS]
//!              [--read-timeout-ms MS]
//! ```
//!
//! Instances and matchings are JSON (serde representations of
//! [`almost_stable::Instance`] and [`almost_stable::Matching`]).
//!
//! ## Exit codes
//!
//! There is exactly one exit path (`main`'s match on [`run`]), and every
//! failure is classified:
//!
//! | code | class | examples |
//! |------|-------|----------|
//! | 0    | success | |
//! | 2    | usage | unknown subcommand, unknown flag, bad flag value |
//! | 3    | input | unreadable file, malformed instance/matching JSON |
//! | 4    | solve | engine error, matching fails verification |
//!
//! Scripts can therefore distinguish "you called it wrong" from "your
//! file is bad" from "the solve itself failed". `tests/cli.rs` pins
//! these codes.

use almost_stable::core::baselines::distributed_gs;
use almost_stable::{
    almost_regular_asm, asm, generators, rand_asm, AlmostRegularParams, AsmConfig, Instance,
    InstanceMetrics, MatcherBackend, Matching, RandAsmParams, StabilityReport,
};
use asm_matching::{verify_matching, InstabilityMeasures, WelfareReport};
use asm_service::{RouterConfig, ServiceConfig};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "usage:
  asm generate --family <complete|erdos-renyi|regular|almost-regular|zipf|
                         geometric|chain|master-list|noisy-master>
               --n <N> [--d <D>] [--p <P>] [--alpha <A>] [--s <S>]
               [--noise <X>] [--seed <SEED>] [--out FILE]
  asm solve    --input FILE [--algorithm asm|rand-asm|almost-regular|gs]
               [--eps E] [--delta D] [--seed SEED]
               [--backend hkp|greedy|proposal|pr|ii] [--out FILE]
  asm analyze  --input FILE --matching FILE [--eps E]
  asm info     --input FILE
  asm serve    [--addr HOST:PORT] [--workers N] [--queue-capacity N]
               [--cache-capacity N] [--worker-delay-ms MS] [--shards N]
  asm route    --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
               [--forwarders N] [--queue-capacity N]
               [--probe-interval-ms MS] [--probe-timeout-ms MS]
               [--down-after K] [--connect-timeout-ms MS]
               [--read-timeout-ms MS]

exit codes: 0 success, 2 usage error, 3 input/I-O error, 4 solve error";

/// Every CLI failure, classified for the exit code. See the module docs.
#[derive(Debug)]
enum CliError {
    /// Exit 2: the invocation itself is wrong.
    Usage(String),
    /// Exit 3: a file could not be read, written, or parsed.
    Input(String),
    /// Exit 4: the engine rejected or failed the computation.
    Solve(String),
}

impl CliError {
    fn usage(message: impl fmt::Display) -> Self {
        CliError::Usage(message.to_string())
    }

    fn input(message: impl fmt::Display) -> Self {
        CliError::Input(message.to_string())
    }

    fn solve(message: impl fmt::Display) -> Self {
        CliError::Solve(message.to_string())
    }

    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Solve(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Solve(m) => write!(f, "{m}"),
        }
    }
}

type CliResult<T> = Result<T, CliError>;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.code())
        }
    }
}

/// Splits `--key value` argument pairs after the subcommand.
fn parse_flags(args: &[String]) -> CliResult<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::usage(format!("expected --flag, got {:?}", args[i])))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> CliResult<T>
where
    T::Err: fmt::Display,
{
    match flags.get(key) {
        Some(v) => v
            .parse::<T>()
            .map_err(|e| CliError::usage(format!("--{key}: {e}"))),
        None => Ok(default),
    }
}

fn run() -> CliResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(CliError::usage("missing subcommand"));
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "generate" => generate(&flags),
        "solve" => solve(&flags),
        "analyze" => analyze(&flags),
        "info" => info(&flags),
        "serve" => serve(&flags),
        "route" => route(&flags),
        other => Err(CliError::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn load_instance(flags: &HashMap<String, String>) -> CliResult<Instance> {
    let path = flags
        .get("input")
        .ok_or_else(|| CliError::usage("--input is required"))?;
    let text = fs::read_to_string(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    if path.ends_with(".txt") {
        asm_instance::parse_text(&text).map_err(|e| CliError::input(format!("{path}: {e}")))
    } else {
        serde_json::from_str(&text).map_err(|e| CliError::input(format!("{path}: {e}")))
    }
}

fn write_or_print<T: serde::Serialize>(
    flags: &HashMap<String, String>,
    value: &T,
) -> CliResult<()> {
    let json = serde_json::to_string(value).map_err(CliError::input)?;
    match flags.get("out") {
        Some(path) => {
            fs::write(path, json).map_err(|e| CliError::input(format!("{path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn write_instance(flags: &HashMap<String, String>, inst: &Instance) -> CliResult<()> {
    match flags.get("out") {
        Some(path) if path.ends_with(".txt") => {
            fs::write(path, asm_instance::to_text(inst))
                .map_err(|e| CliError::input(format!("{path}: {e}")))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        _ => write_or_print(flags, inst),
    }
}

fn generate(flags: &HashMap<String, String>) -> CliResult<()> {
    let family = flags
        .get("family")
        .ok_or_else(|| CliError::usage("--family is required"))?
        .as_str();
    let n: usize = get_parsed(flags, "n", 0)?;
    if n == 0 {
        return Err(CliError::usage("--n must be a positive integer"));
    }
    let d: usize = get_parsed(flags, "d", (n / 8).max(2).min(n))?;
    let seed: u64 = get_parsed(flags, "seed", 0)?;
    let inst = match family {
        "complete" => generators::complete(n, seed),
        "erdos-renyi" => generators::erdos_renyi(n, n, get_parsed(flags, "p", 0.25)?, seed),
        "regular" => generators::regular(n, d, seed),
        "almost-regular" => {
            generators::almost_regular(n, d, get_parsed(flags, "alpha", 2.0)?, seed)
        }
        "zipf" => generators::zipf(n, d, get_parsed(flags, "s", 1.2)?, seed),
        "geometric" => generators::geometric(n, d, seed),
        "chain" => generators::adversarial_chain(n),
        "master-list" => generators::master_list(n, seed),
        "noisy-master" => generators::noisy_master(n, get_parsed(flags, "noise", 1.0)?, seed),
        other => return Err(CliError::usage(format!("unknown family {other:?}"))),
    };
    eprintln!("generated: {}", InstanceMetrics::measure(&inst));
    write_instance(flags, &inst)
}

fn backend_from(flags: &HashMap<String, String>) -> CliResult<MatcherBackend> {
    match flags.get("backend").map(String::as_str) {
        None => Ok(MatcherBackend::HkpOracle),
        Some(name) => asm_service::protocol::parse_backend(name)
            .ok_or_else(|| CliError::usage(format!("unknown backend {name:?}"))),
    }
}

fn solve(flags: &HashMap<String, String>) -> CliResult<()> {
    let inst = load_instance(flags)?;
    let eps: f64 = get_parsed(flags, "eps", 0.5)?;
    // AsmConfig::new panics on a bad ε; surface it as a CLI error instead.
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(CliError::usage(format!(
            "--eps must be positive and finite, got {eps}"
        )));
    }
    let delta: f64 = get_parsed(flags, "delta", 0.1)?;
    let seed: u64 = get_parsed(flags, "seed", 0)?;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("asm");
    let matching: Matching = match algorithm {
        "asm" => {
            let config = AsmConfig::new(eps)
                .with_seed(seed)
                .with_backend(backend_from(flags)?);
            let report = asm(&inst, &config).map_err(CliError::solve)?;
            eprintln!("asm: {report}");
            report.matching
        }
        "rand-asm" => {
            let report = rand_asm(&inst, &RandAsmParams::new(eps, delta).with_seed(seed))
                .map_err(CliError::solve)?;
            eprintln!("rand-asm: {report}");
            report.matching
        }
        "almost-regular" => {
            let report =
                almost_regular_asm(&inst, &AlmostRegularParams::new(eps, delta).with_seed(seed))
                    .map_err(CliError::solve)?;
            eprintln!("almost-regular-asm: {report}");
            report.matching
        }
        "gs" => {
            let report = distributed_gs(&inst);
            eprintln!(
                "distributed-gs: |M|={}, rounds {}, proposals {}",
                report.matching.len(),
                report.rounds,
                report.proposals
            );
            report.matching
        }
        other => return Err(CliError::usage(format!("unknown algorithm {other:?}"))),
    };
    let stability = StabilityReport::analyze(&inst, &matching);
    eprintln!("stability: {stability}");
    write_or_print(flags, &matching)
}

fn analyze(flags: &HashMap<String, String>) -> CliResult<()> {
    let inst = load_instance(flags)?;
    let mpath = flags
        .get("matching")
        .ok_or_else(|| CliError::usage("--matching is required"))?;
    let text = fs::read_to_string(mpath).map_err(|e| CliError::input(format!("{mpath}: {e}")))?;
    let matching: Matching =
        serde_json::from_str(&text).map_err(|e| CliError::input(format!("{mpath}: {e}")))?;
    verify_matching(&inst, &matching).map_err(CliError::solve)?;
    let stability = StabilityReport::analyze(&inst, &matching);
    println!("stability   : {stability}");
    println!(
        "instability : {}",
        InstabilityMeasures::measure(&inst, &matching)
    );
    println!("welfare     : {}", WelfareReport::measure(&inst, &matching));
    if let Some(eps) = flags.get("eps") {
        let eps: f64 = eps
            .parse()
            .map_err(|e| CliError::usage(format!("--eps: {e}")))?;
        println!(
            "(1-{eps})-stable : {}",
            stability.is_one_minus_eps_stable(eps)
        );
    }
    Ok(())
}

fn info(flags: &HashMap<String, String>) -> CliResult<()> {
    let inst = load_instance(flags)?;
    let m = InstanceMetrics::measure(&inst);
    println!("{m}");
    println!("complete    : {}", inst.is_complete());
    println!("alpha (men) : {:.3}", inst.alpha());
    println!("isolated    : {}", m.isolated_players);
    Ok(())
}

/// Runs the matching service until a `shutdown` request arrives.
///
/// Prints `asm-service listening on ADDR` as the first stdout line (and
/// flushes it) so wrappers can scrape the bound address — with
/// `--addr 127.0.0.1:0` the OS picks the port.
fn serve(flags: &HashMap<String, String>) -> CliResult<()> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7464".to_string());
    let workers: usize = get_parsed(flags, "workers", 0)?;
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let config = ServiceConfig {
        workers,
        queue_capacity: get_parsed(flags, "queue-capacity", 64)?,
        cache_capacity: get_parsed(flags, "cache-capacity", 256)?,
        worker_delay_ms: get_parsed(flags, "worker-delay-ms", 0)?,
        shards: get_parsed(flags, "shards", 1)?,
    };
    let handle = asm_service::serve(&addr, config)
        .map_err(|e| CliError::input(format!("cannot bind {addr}: {e}")))?;
    println!("asm-service listening on {}", handle.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::input(format!("stdout: {e}")))?;
    let served = handle.wait();
    println!("asm-service drained after {served} frames");
    Ok(())
}

/// Runs the front-tier router until a `shutdown` request arrives (which
/// it also broadcasts to every live backend).
///
/// Prints `asm-router listening on ADDR` as the first stdout line (and
/// flushes it) so wrappers can scrape the bound address — with
/// `--addr 127.0.0.1:0` the OS picks the port.
fn route(flags: &HashMap<String, String>) -> CliResult<()> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7465".to_string());
    let backends: Vec<String> = flags
        .get("backends")
        .ok_or_else(|| CliError::usage("--backends is required (comma-separated HOST:PORT list)"))?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if backends.is_empty() {
        return Err(CliError::usage("--backends must name at least one backend"));
    }
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        backends,
        forwarders: get_parsed(flags, "forwarders", defaults.forwarders)?,
        queue_capacity: get_parsed(flags, "queue-capacity", defaults.queue_capacity)?,
        probe_interval_ms: get_parsed(flags, "probe-interval-ms", defaults.probe_interval_ms)?,
        probe_timeout_ms: get_parsed(flags, "probe-timeout-ms", defaults.probe_timeout_ms)?,
        down_after: get_parsed(flags, "down-after", defaults.down_after)?,
        connect_timeout_ms: get_parsed(flags, "connect-timeout-ms", defaults.connect_timeout_ms)?,
        read_timeout_ms: get_parsed(flags, "read-timeout-ms", defaults.read_timeout_ms)?,
    };
    let handle = asm_service::serve_router(&addr, config)
        .map_err(|e| CliError::input(format!("cannot start router on {addr}: {e}")))?;
    println!("asm-router listening on {}", handle.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::input(format!("stdout: {e}")))?;
    let served = handle.wait();
    println!("asm-router drained after {served} frames");
    Ok(())
}
