//! `asm` — command-line interface to the almost-stable matching library.
//!
//! ```text
//! asm generate --family <name> --n <N> [options] --out inst.json
//! asm solve    --input inst.json [--algorithm asm|rand-asm|almost-regular|gs]
//!              [--eps E] [--delta D] [--seed S] [--backend hkp|greedy|ii]
//!              [--out matching.json]
//! asm analyze  --input inst.json --matching matching.json [--eps E]
//! asm info     --input inst.json
//! ```
//!
//! Instances and matchings are JSON (serde representations of
//! [`almost_stable::Instance`] and [`almost_stable::Matching`]).

use almost_stable::core::baselines::distributed_gs;
use almost_stable::{
    almost_regular_asm, asm, generators, rand_asm, AlmostRegularParams, AsmConfig, Instance,
    InstanceMetrics, MatcherBackend, Matching, RandAsmParams, StabilityReport,
};
use asm_matching::{verify_matching, InstabilityMeasures, WelfareReport};
use std::collections::HashMap;
use std::error::Error;
use std::fs;
use std::process::ExitCode;

const USAGE: &str = "usage:
  asm generate --family <complete|erdos-renyi|regular|almost-regular|zipf|
                         geometric|chain|master-list|noisy-master>
               --n <N> [--d <D>] [--p <P>] [--alpha <A>] [--s <S>]
               [--noise <X>] [--seed <SEED>] [--out FILE]
  asm solve    --input FILE [--algorithm asm|rand-asm|almost-regular|gs]
               [--eps E] [--delta D] [--seed SEED]
               [--backend hkp|greedy|proposal|pr|ii] [--out FILE]
  asm analyze  --input FILE --matching FILE [--eps E]
  asm info     --input FILE";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `--key value` argument pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, Box<dyn Error>> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, Box<dyn Error>>
where
    T::Err: Error + 'static,
{
    match flags.get(key) {
        Some(v) => Ok(v.parse::<T>().map_err(|e| format!("--{key}: {e}"))?),
        None => Ok(default),
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "generate" => generate(&flags),
        "solve" => solve(&flags),
        "analyze" => analyze(&flags),
        "info" => info(&flags),
        other => Err(format!("unknown subcommand {other:?}").into()),
    }
}

fn load_instance(flags: &HashMap<String, String>) -> Result<Instance, Box<dyn Error>> {
    let path = flags.get("input").ok_or("--input is required")?;
    let text = fs::read_to_string(path)?;
    if path.ends_with(".txt") {
        Ok(asm_instance::parse_text(&text)?)
    } else {
        Ok(serde_json::from_str(&text)?)
    }
}

fn write_or_print<T: serde::Serialize>(
    flags: &HashMap<String, String>,
    value: &T,
) -> Result<(), Box<dyn Error>> {
    let json = serde_json::to_string(value)?;
    match flags.get("out") {
        Some(path) => {
            fs::write(path, json)?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn write_instance(flags: &HashMap<String, String>, inst: &Instance) -> Result<(), Box<dyn Error>> {
    match flags.get("out") {
        Some(path) if path.ends_with(".txt") => {
            fs::write(path, asm_instance::to_text(inst))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        _ => write_or_print(flags, inst),
    }
}

fn generate(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let family = flags.get("family").ok_or("--family is required")?.as_str();
    let n: usize = get_parsed(flags, "n", 0)?;
    if n == 0 {
        return Err("--n must be a positive integer".into());
    }
    let d: usize = get_parsed(flags, "d", (n / 8).max(2).min(n))?;
    let seed: u64 = get_parsed(flags, "seed", 0)?;
    let inst = match family {
        "complete" => generators::complete(n, seed),
        "erdos-renyi" => generators::erdos_renyi(n, n, get_parsed(flags, "p", 0.25)?, seed),
        "regular" => generators::regular(n, d, seed),
        "almost-regular" => {
            generators::almost_regular(n, d, get_parsed(flags, "alpha", 2.0)?, seed)
        }
        "zipf" => generators::zipf(n, d, get_parsed(flags, "s", 1.2)?, seed),
        "geometric" => generators::geometric(n, d, seed),
        "chain" => generators::adversarial_chain(n),
        "master-list" => generators::master_list(n, seed),
        "noisy-master" => generators::noisy_master(n, get_parsed(flags, "noise", 1.0)?, seed),
        other => return Err(format!("unknown family {other:?}").into()),
    };
    eprintln!("generated: {}", InstanceMetrics::measure(&inst));
    write_instance(flags, &inst)
}

fn backend_from(flags: &HashMap<String, String>) -> Result<MatcherBackend, Box<dyn Error>> {
    match flags.get("backend").map(String::as_str) {
        None | Some("hkp") => Ok(MatcherBackend::HkpOracle),
        Some("greedy") => Ok(MatcherBackend::DetGreedy),
        Some("proposal") => Ok(MatcherBackend::BipartiteProposal),
        Some("pr") => Ok(MatcherBackend::PanconesiRizzi),
        Some("ii") => Ok(MatcherBackend::IsraeliItai { max_iterations: 64 }),
        Some(other) => Err(format!("unknown backend {other:?}").into()),
    }
}

fn solve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let inst = load_instance(flags)?;
    let eps: f64 = get_parsed(flags, "eps", 0.5)?;
    // AsmConfig::new panics on a bad ε; surface it as a CLI error instead.
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(format!("--eps must be positive and finite, got {eps}").into());
    }
    let delta: f64 = get_parsed(flags, "delta", 0.1)?;
    let seed: u64 = get_parsed(flags, "seed", 0)?;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("asm");
    let matching: Matching = match algorithm {
        "asm" => {
            let config = AsmConfig::new(eps)
                .with_seed(seed)
                .with_backend(backend_from(flags)?);
            let report = asm(&inst, &config)?;
            eprintln!("asm: {report}");
            report.matching
        }
        "rand-asm" => {
            let report = rand_asm(&inst, &RandAsmParams::new(eps, delta).with_seed(seed))?;
            eprintln!("rand-asm: {report}");
            report.matching
        }
        "almost-regular" => {
            let report =
                almost_regular_asm(&inst, &AlmostRegularParams::new(eps, delta).with_seed(seed))?;
            eprintln!("almost-regular-asm: {report}");
            report.matching
        }
        "gs" => {
            let report = distributed_gs(&inst);
            eprintln!(
                "distributed-gs: |M|={}, rounds {}, proposals {}",
                report.matching.len(),
                report.rounds,
                report.proposals
            );
            report.matching
        }
        other => return Err(format!("unknown algorithm {other:?}").into()),
    };
    let stability = StabilityReport::analyze(&inst, &matching);
    eprintln!("stability: {stability}");
    write_or_print(flags, &matching)
}

fn analyze(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let inst = load_instance(flags)?;
    let mpath = flags.get("matching").ok_or("--matching is required")?;
    let matching: Matching = serde_json::from_str(&fs::read_to_string(mpath)?)?;
    verify_matching(&inst, &matching)?;
    let stability = StabilityReport::analyze(&inst, &matching);
    println!("stability   : {stability}");
    println!(
        "instability : {}",
        InstabilityMeasures::measure(&inst, &matching)
    );
    println!("welfare     : {}", WelfareReport::measure(&inst, &matching));
    if let Some(eps) = flags.get("eps") {
        let eps: f64 = eps.parse()?;
        println!(
            "(1-{eps})-stable : {}",
            stability.is_one_minus_eps_stable(eps)
        );
    }
    Ok(())
}

fn info(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let inst = load_instance(flags)?;
    let m = InstanceMetrics::measure(&inst);
    println!("{m}");
    println!("complete    : {}", inst.is_complete());
    println!("alpha (men) : {:.3}", inst.alpha());
    println!("isolated    : {}", m.isolated_players);
    Ok(())
}
