//! # almost-stable: fast distributed almost stable matchings
//!
//! A Rust implementation of **Ostrovsky & Rosenbaum, *Fast Distributed
//! Almost Stable Matchings* (PODC 2015)** — the first sub-polynomial-round
//! distributed algorithms for the stable marriage problem with unbounded
//! preference lists — together with every substrate the paper relies on:
//!
//! * [`congest`] — a synchronous CONGEST-model network simulator;
//! * [`instance`] — stable-marriage instances and workload generators;
//! * [`matching`] — matchings, blocking pairs, and stability measures;
//! * [`maximal`] — distributed maximal/almost-maximal matching subroutines
//!   (Israeli–Itai, AMM, deterministic greedy);
//! * [`core`] — the `ASM`, `RandASM`, and `AlmostRegularASM` algorithms,
//!   Gale–Shapley baselines, and two cross-validated execution engines.
//!
//! The commonly used items are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use almost_stable::{asm, generators, AsmConfig};
//!
//! // 100 men and 100 women, each ranking 10 acquaintances.
//! let inst = generators::regular(100, 10, 42);
//!
//! // Ask for a matching with at most 0.5 · |E| blocking pairs.
//! let report = asm(&inst, &AsmConfig::new(0.5))?;
//! let stability = report.stability(&inst);
//!
//! assert!(stability.is_one_minus_eps_stable(0.5));
//! println!(
//!     "{} pairs matched in {} rounds; {} of {} edges block",
//!     report.matching.len(),
//!     report.rounds,
//!     stability.blocking_pairs,
//!     stability.num_edges,
//! );
//! # Ok::<(), almost_stable::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asm_congest as congest;
pub use asm_core as core;
pub use asm_instance as instance;
pub use asm_matching as matching;
pub use asm_maximal as maximal;

pub use asm_congest::{NetStats, NodeId, SplitRng, Topology};
pub use asm_core::baselines::{distributed_gs, truncated_gs, GsReport};
pub use asm_core::{
    almost_regular_asm, asm, asm_woman_proposing, rand_asm, AlmostRegularParams, AsmConfig,
    AsmReport, ConfigError, RandAsmParams,
};
pub use asm_instance::{generators, Gender, Instance, InstanceBuilder, InstanceMetrics};
pub use asm_matching::{
    blocking_pairs, count_blocking_pairs, eps_blocking_pairs, man_optimal_stable, Matching,
    StabilityReport,
};
pub use asm_maximal::MatcherBackend;
