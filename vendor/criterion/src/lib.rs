//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, sample-size and
//! timing knobs — backed by a simple median-of-samples wall-clock runner
//! rather than criterion's full statistical pipeline. Good enough to
//! compare orders of magnitude and keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (same implementation).
pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id labelled only by the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, recording the median of the sampled runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut durations = Vec::with_capacity(self.samples);
        let deadline = Instant::now() + self.measurement;
        for i in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            durations.push(start.elapsed());
            if i >= 1 && Instant::now() > deadline {
                break; // keep offline bench runs bounded
            }
        }
        durations.sort_unstable();
        self.last_median = durations[durations.len() / 2];
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            measurement: self.measurement,
            last_median: Duration::ZERO,
        };
        routine(&mut b); // warm-up + measurement in one pass
        println!("bench {}/{}: median {:?}", self.name, id, b.last_median);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            measurement: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", routine);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(50));
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn harness_runs_groups() {
        demo_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
