//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Hand-rolled token parsing (the container has no syn/quote). Supports
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields, newtype structs, tuple structs;
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, matching real serde's default representation);
//! * container attributes `#[serde(try_from = "T")]` / `#[serde(into = "T")]`;
//! * the field attribute `#[serde(skip)]`.
//!
//! Generic type parameters are intentionally unsupported — the derive
//! panics with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct ContainerAttrs {
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` — `len == 1` is serialized transparently.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Parsed {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos).container;
    skip_visibility(&tokens, &mut pos);

    let kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for item kind `{other}`"),
    };

    Parsed { name, attrs, shape }
}

struct AttrScan {
    container: ContainerAttrs,
    field_skip: bool,
}

/// Consumes leading `#[...]` attributes; extracts `#[serde(...)]` keys.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> AttrScan {
    let mut out = AttrScan {
        container: ContainerAttrs::default(),
        field_skip: false,
    };
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            panic!("malformed attribute");
        };
        *pos += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        // Only `serde(...)` attributes matter; doc comments etc. are skipped.
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match &args[i] {
                TokenTree::Ident(key) => {
                    let key = key.to_string();
                    let has_eq =
                        matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                    if has_eq {
                        let Some(TokenTree::Literal(lit)) = args.get(i + 2) else {
                            panic!("expected string literal after `{key} =`");
                        };
                        let value = strip_quotes(&lit.to_string());
                        match key.as_str() {
                            "try_from" => out.container.try_from = Some(value),
                            "into" => out.container.into = Some(value),
                            other => panic!("unsupported serde attribute `{other} = ...`"),
                        }
                        i += 3;
                    } else {
                        match key.as_str() {
                            "skip" => out.field_skip = true,
                            other => panic!("unsupported serde attribute `{other}`"),
                        }
                        i += 1;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => panic!("unexpected token in serde attribute: {other:?}"),
            }
        }
    }
    out
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        // `pub(crate)` / `pub(super)` carry a parenthesized group.
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let scan = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        // Skip `:` then the type, up to a top-level comma. Angle brackets
        // never contain top-level commas at depth 0 here because generic
        // arguments live inside `<...>` which we track.
        assert!(
            matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        pos += 1;
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(pos) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field {
            name,
            skip: scan.field_skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _ = parse_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit enum discriminants are unsupported (variant `{name}`)");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    if let Some(into) = &p.attrs.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
             \tfn to_content(&self) -> ::serde::Content {{\n\
             \t\tlet raw: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             \t\t::serde::Serialize::to_content(&raw)\n\
             \t}}\n}}\n"
        );
    }
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::to_content(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut m: Vec<(String, ::serde::Content)> = Vec::new();\n{pushes}::serde::Content::Map(m)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\tfn to_content(&self) -> ::serde::Content {{\n{body}\n\t}}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    if let Some(try_from) = &p.attrs.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
             \tfn from_content(content: &::serde::Content) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             \t\tlet raw: {try_from} = ::serde::Deserialize::from_content(content)?;\n\
             \t\t::core::convert::TryFrom::try_from(raw).map_err(|e| ::serde::Error::custom(&e))\n\
             \t}}\n}}\n"
        );
    }
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_content(::serde::content_get(map, \"{0}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{0}` in {name}\"))?)?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let map = content.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for struct {name}\"))?;\n\
                 if items.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for variant {vn}\"))?;\n\
                             if items.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong arity for variant {vn}\")); }}\n\
                             ::core::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::from_content(::serde::content_get(vmap, \"{0}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{0}` in variant {vn}\"))?)?,\n",
                                    f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let vmap = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for variant {vn}\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n",
                        ));
                    }
                }
            }
            format!(
                "match content {{\n\
                 ::serde::Content::Str(tag) => match tag.as_str() {{\n{unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 other => ::core::result::Result::Err(::serde::Error::custom(&format!(\"expected enum tag for {name}, found {{}}\", other.kind()))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\tfn from_content(content: &::serde::Content) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n\t}}\n}}\n"
    )
}
