//! Offline vendored stand-in for the `serde` crate.
//!
//! The build container has no network access and no crates-io mirror, so
//! the workspace vendors the minimal serialization surface it actually
//! uses (see `vendor/README.md`). The public contract kept compatible
//! with real serde:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (externally
//!   tagged, like serde's default representation);
//! * container attributes `#[serde(try_from = "T", into = "T")]` and the
//!   field attribute `#[serde(skip)]`;
//! * `serde_json::{to_string, to_string_pretty, from_str}` round-trips.
//!
//! Internally the model is a self-describing [`Content`] tree rather than
//! serde's visitor architecture: `Serialize` renders a value into
//! `Content`, `Deserialize` reads it back. `serde_json` (also vendored)
//! converts `Content` to and from JSON text.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the vendored stand-in for serde's
/// data model. JSON maps onto this losslessly for the types the workspace
/// serializes.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always < 0; non-negative values use `UInt`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Content>),
    /// A string-keyed map in insertion order (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::UInt(_) => "uint",
            Content::Int(_) => "int",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up `key` in derive-generated struct maps.
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization / deserialization failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error carrying a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value into the [`Content`] data model.
pub trait Serialize {
    /// The serialized form of `self`.
    fn to_content(&self) -> Content;
}

/// Reconstructs a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parses `content` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `content` has the wrong shape.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::UInt(v) => *v,
                    Content::Int(v) if *v >= 0 => *v as u64,
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::UInt(v as u64)
                } else {
                    Content::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v: i64 = match content {
                    Content::Int(v) => *v,
                    Content::UInt(v) => i64::try_from(*v)
                        .map_err(|_| Error(format!("{v} out of range for i64")))?,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Float(v) => Ok(*v as $t),
                    Content::UInt(v) => Ok(*v as $t),
                    Content::Int(v) => Ok(*v as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&7u32.to_content()).unwrap(), 7);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u8>>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u8, -2i32, "x".to_string());
        assert_eq!(
            <(u8, i32, String)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_content(&Content::UInt(300)).is_err());
    }

    #[test]
    fn wrong_kind_reports_both_sides() {
        let err = bool::from_content(&Content::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        assert!(err.to_string().contains("uint"));
    }
}
