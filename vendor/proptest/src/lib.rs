//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the subset of proptest its property tests use (see `vendor/README.md`):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, integer range and
//!   tuple strategies, [`Just`], `any::<T>()`, and `collection::vec`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest: generation is a deterministic
//! splitmix64 stream seeded by the test name (every run explores the same
//! cases — deliberate, to keep the tier-1 suite reproducible), there is
//! **no shrinking**, and failures report the case index so a failing case
//! can be re-examined by running the same test again.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not complete.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream keyed by the (hashed) test name, so distinct properties
    /// explore distinct cases but every run of one property is identical.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range handed to TestRng::below");
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator.
///
/// Unlike real proptest there is no shrinking: `generate` directly
/// produces the final value for a case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                self.len.clone().generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The closure is load-bearing: $body may early-return a
                // TestCaseError through `?`, which needs its own scope.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                // Rejected cases (prop_assume!) are simply skipped;
                // assertion failures panic with the case index visible.
                let _ = __outcome;
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies_and_assumes(x in 0u64..100, y in any::<u64>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 3);
            let _ = y;
        }

        #[test]
        fn flat_map_and_just_compose((base, reps) in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n))) {
            prop_assert!(reps < base);
        }
    }
}
