//! Offline vendored stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Converts between JSON text and the vendored [`serde::Content`] model.
//! Supports everything the workspace serializes: `to_string`,
//! `to_string_pretty`, and `from_str`, with full string escaping and
//! strict number handling.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization or parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    message: String,
    /// Byte offset of a parse error, if this came from the parser.
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Error {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error {
            message: e.to_string(),
            offset: None,
        }
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the types this workspace serializes; the `Result` keeps
/// call sites source-compatible with real serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-indented JSON.
///
/// # Errors
///
/// As for [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON (with a byte offset) or when the
/// parsed document has the wrong shape for `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = parse_document(text)?;
    T::from_content(&content).map_err(Error::from)
}

// ------------------------------------------------------------- writing

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::Float(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; integers print without a
        // fraction, which JSON readers accept as a number.
        out.push_str(&v.to_string());
    } else {
        // JSON has no NaN/Infinity; real serde_json writes null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_document(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::parse("invalid unicode escape", self.pos))
                                }
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error::parse("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point. The input is a &str so
                    // boundaries are always valid.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("non-ascii \\u escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(Error::parse("invalid number", start));
        }
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error::parse("invalid number", start))
        } else if let Some(digits) = text.strip_prefix('-') {
            // Negative integer.
            let _ = digits;
            text.parse::<i64>()
                .map(Content::Int)
                .or_else(|_| text.parse::<f64>().map(Content::Float))
                .map_err(|_| Error::parse("invalid number", start))
        } else {
            text.parse::<u64>()
                .map(Content::UInt)
                .or_else(|_| text.parse::<f64>().map(Content::Float))
                .map_err(|_| Error::parse("invalid number", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\ttrue\u{1}é⚙".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn malformed_inputs_error_with_offset() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<Vec<u32>>("[1 2]").is_err());
        let err = from_str::<bool>("trub").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  1"));
        assert_eq!(from_str::<Vec<u8>>(&pretty).unwrap(), v);
    }

    #[test]
    fn shape_mismatch_reports_serde_error() {
        let err = from_str::<bool>("[1]").unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
